//! Lock-free request metrics for the `/metrics` endpoint.
//!
//! Everything is `AtomicU64` counters updated on the worker threads:
//! request counts by status class, a fixed log-spaced latency histogram
//! (for percentile estimates without storing samples), cache hit/miss
//! counts, and shed (`503`) counts. Gauges that belong to the server —
//! worker count and live pool depth — are published into [`Gauges`] by the
//! accept loop so the metrics endpoint never needs a handle on the pool
//! itself.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use cuisine_exec::Faults;
use serde::{Map, Value};

/// Upper bounds (µs) of the latency histogram buckets; the last bucket is
/// unbounded.
pub const LATENCY_BOUNDS_US: [u64; 12] =
    [50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 1_000_000];

/// Gauges owned by the server and read by `/metrics`.
#[derive(Debug, Default)]
pub struct Gauges {
    /// Jobs queued or running in the worker pool.
    pub pool_depth: AtomicUsize,
    /// Worker-thread count.
    pub workers: AtomicUsize,
    /// Currently open client connections across all shards.
    pub connections: AtomicUsize,
    /// Handler panics contained by the evolve and registry worker pools
    /// (published by the accept loop from the pools' own counters).
    pub worker_panics: AtomicU64,
}

/// Snapshot provenance reported by `/metrics`: which build produced the
/// precomputed bodies, with which mining kernel, and how long it took.
#[derive(Debug, Clone)]
pub struct SnapshotInfo<'a> {
    /// Snapshot set version tag.
    pub version: &'a str,
    /// Label of the mining kernel the snapshots were built with.
    pub miner: &'a str,
    /// Wall-clock of the snapshot build in milliseconds (0 when the
    /// embedding did not measure it, e.g. test fixtures).
    pub build_wall_ms: u64,
    /// Wall-clock of the build's mining stage (the two fig3 passes) in
    /// milliseconds (0 when the build ran without a real clock).
    pub mining_wall_ms: u64,
}

/// Registry counters and per-corpus rows reported by `/metrics`,
/// snapshotted from [`CorpusRegistry::stats`].
///
/// [`CorpusRegistry::stats`]: crate::registry::CorpusRegistry::stats
#[derive(Debug, Clone)]
pub struct RegistryStats {
    /// Snapshot builds dispatched (initial registrations + hot-swaps).
    pub builds: u64,
    /// Completed builds that replaced an already-Ready corpus (epoch
    /// bumps past the first).
    pub swaps: u64,
    /// Registrations that coalesced onto an identical pending build
    /// instead of queueing their own.
    pub coalesced_registrations: u64,
    /// Builds that failed (panic or injected fault). A failed rebuild
    /// leaves the last-good epoch serving; a failed first build leaves
    /// the entry in a Failed state answering a named `500`.
    pub build_failures: u64,
    /// Per-corpus rows: key, state, epoch, miner, build_ms, mining_ms,
    /// hits, rebuilding, degraded, error.
    pub corpora: Value,
}

impl Default for RegistryStats {
    fn default() -> Self {
        RegistryStats {
            builds: 0,
            swaps: 0,
            coalesced_registrations: 0,
            build_failures: 0,
            corpora: Value::Array(Vec::new()),
        }
    }
}

/// Aggregated request counters. All methods are safe to call concurrently.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    requests: AtomicU64,
    by_class: [AtomicU64; 5],
    latency_total_us: AtomicU64,
    latency_buckets: [AtomicU64; LATENCY_BOUNDS_US.len() + 1],
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    shed: AtomicU64,
    keepalive_reuses: AtomicU64,
    coalesced_waiters: AtomicU64,
    evolve_cache_hits: AtomicU64,
    evolve_cache_misses: AtomicU64,
    evolve_computations: AtomicU64,
    deadline_expired: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Fresh counters with the uptime clock starting now.
    pub fn new() -> Self {
        Metrics {
            started: Instant::now(),
            requests: AtomicU64::new(0),
            by_class: Default::default(),
            latency_total_us: AtomicU64::new(0),
            latency_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            keepalive_reuses: AtomicU64::new(0),
            coalesced_waiters: AtomicU64::new(0),
            evolve_cache_hits: AtomicU64::new(0),
            evolve_cache_misses: AtomicU64::new(0),
            evolve_computations: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
        }
    }

    /// Record a request answered `504` because its deadline budget ran
    /// out (waiting on a flight, or reaped mid-frame by the idle sweep).
    pub fn record_deadline_expired(&self) {
        self.deadline_expired.fetch_add(1, Ordering::Relaxed);
    }

    /// Deadline expiries recorded so far.
    pub fn deadline_expired(&self) -> u64 {
        self.deadline_expired.load(Ordering::Relaxed)
    }

    /// Record one completed request.
    pub fn record(&self, status: u16, latency: Duration) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let class = (status / 100).clamp(1, 5) as usize - 1;
        self.by_class[class].fetch_add(1, Ordering::Relaxed);
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.latency_total_us.fetch_add(us, Ordering::Relaxed);
        let bucket = LATENCY_BOUNDS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(LATENCY_BOUNDS_US.len());
        self.latency_buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Record an LRU cache lookup outcome.
    pub fn record_cache(&self, hit: bool) {
        if hit {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record a request shed with `503` because the pool queue was full.
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a request served over an already-used persistent connection
    /// (every request after the first on one connection).
    pub fn record_keepalive_reuse(&self) {
        self.keepalive_reuses.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an `/evolve` request that attached to an identical in-flight
    /// computation instead of starting its own.
    pub fn record_coalesced_waiter(&self) {
        self.coalesced_waiters.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a seeded-evolve result-cache lookup outcome.
    pub fn record_evolve_cache(&self, hit: bool) {
        if hit {
            self.evolve_cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.evolve_cache_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record one underlying `/evolve` ensemble computation actually run
    /// (coalesced waiters and cache hits do not count one).
    pub fn record_evolve_computation(&self) {
        self.evolve_computations.fetch_add(1, Ordering::Relaxed);
    }

    /// Keep-alive reuse count recorded so far.
    pub fn keepalive_reuses(&self) -> u64 {
        self.keepalive_reuses.load(Ordering::Relaxed)
    }

    /// Coalesced-waiter count recorded so far.
    pub fn coalesced_waiters(&self) -> u64 {
        self.coalesced_waiters.load(Ordering::Relaxed)
    }

    /// `(cache hits, cache misses, computations)` for `/evolve`.
    pub fn evolve_counts(&self) -> (u64, u64, u64) {
        (
            self.evolve_cache_hits.load(Ordering::Relaxed),
            self.evolve_cache_misses.load(Ordering::Relaxed),
            self.evolve_computations.load(Ordering::Relaxed),
        )
    }

    /// Total requests recorded.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Cache hits and misses recorded so far.
    pub fn cache_counts(&self) -> (u64, u64) {
        (self.cache_hits.load(Ordering::Relaxed), self.cache_misses.load(Ordering::Relaxed))
    }

    /// Latency percentile estimate in µs: the upper bound of the histogram
    /// bucket containing quantile `p` (0 < p ≤ 1). `None` before any
    /// request.
    pub fn latency_percentile_us(&self, p: f64) -> Option<u64> {
        let counts: Vec<u64> =
            self.latency_buckets.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let target = (p.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &count) in counts.iter().enumerate() {
            seen += count;
            if seen >= target {
                return Some(*LATENCY_BOUNDS_US.get(i).unwrap_or(&u64::MAX));
            }
        }
        Some(u64::MAX)
    }

    /// Render the metrics document served by `/metrics`. `snapshot` is
    /// the *default* corpus's provenance; `registry` carries the
    /// registry counters plus one row per registered corpus; `faults` is
    /// the stack's fault-injection handle (its firing counters are
    /// reported whenever a plan is installed).
    pub fn to_json(
        &self,
        gauges: &Gauges,
        snapshot: &SnapshotInfo<'_>,
        lru_len: usize,
        registry: &RegistryStats,
        faults: &Faults,
    ) -> String {
        let requests = self.requests();
        let (hits, misses) = self.cache_counts();
        let total_us = self.latency_total_us.load(Ordering::Relaxed);

        let mut doc = Map::new();
        doc.insert("service", Value::String("cuisine-serve".into()));
        doc.insert("snapshot_version", Value::String(snapshot.version.into()));
        doc.insert("snapshot_build_ms", Value::U64(snapshot.build_wall_ms));
        doc.insert("mining_wall_ms", Value::U64(snapshot.mining_wall_ms));
        doc.insert("miner", Value::String(snapshot.miner.into()));
        doc.insert("uptime_seconds", Value::F64(self.started.elapsed().as_secs_f64()));
        doc.insert("requests_total", Value::U64(requests));

        let mut by_class = Map::new();
        for (i, counter) in self.by_class.iter().enumerate() {
            by_class.insert(format!("{}xx", i + 1), Value::U64(counter.load(Ordering::Relaxed)));
        }
        doc.insert("requests_by_class", Value::Object(by_class));
        doc.insert("requests_shed", Value::U64(self.shed.load(Ordering::Relaxed)));
        doc.insert("keepalive_reuses", Value::U64(self.keepalive_reuses()));
        doc.insert("coalesced_waiters", Value::U64(self.coalesced_waiters()));
        let (evolve_hits, evolve_misses, evolve_computations) = self.evolve_counts();
        doc.insert("evolve_cache_hits", Value::U64(evolve_hits));
        doc.insert("evolve_cache_misses", Value::U64(evolve_misses));
        doc.insert("evolve_computations", Value::U64(evolve_computations));
        doc.insert("registry_builds", Value::U64(registry.builds));
        doc.insert("registry_swaps", Value::U64(registry.swaps));
        doc.insert(
            "registry_coalesced_registrations",
            Value::U64(registry.coalesced_registrations),
        );
        doc.insert("registry_build_failures", Value::U64(registry.build_failures));
        doc.insert("corpora", registry.corpora.clone());
        doc.insert("deadline_expired", Value::U64(self.deadline_expired()));
        doc.insert(
            "worker_panics",
            Value::U64(gauges.worker_panics.load(Ordering::Relaxed)),
        );
        // Process-wide: every OrderedMutex in exec/serve feeds this one
        // counter, so a panic that escaped containment while any tracked
        // guard was live shows up here instead of being silently healed.
        doc.insert(
            "poisoned_lock_recoveries",
            Value::U64(cuisine_exec::lockorder::poison_recoveries()),
        );
        match faults.plan() {
            None => {
                doc.insert("fault_firings", Value::U64(0));
                doc.insert("faults", Value::Null);
            }
            Some(plan) => {
                doc.insert("fault_firings", Value::U64(plan.total_fired()));
                let mut fdoc = Map::new();
                fdoc.insert("spec", Value::String(plan.spec().to_string()));
                fdoc.insert("seed", Value::U64(plan.seed()));
                let points: Vec<Value> = plan
                    .counts()
                    .iter()
                    .map(|count| {
                        let mut row = Map::new();
                        row.insert("point", Value::String(count.point.clone()));
                        row.insert("occurrences", Value::U64(count.occurrences));
                        row.insert("fired", Value::U64(count.fired));
                        Value::Object(row)
                    })
                    .collect();
                fdoc.insert("points", Value::Array(points));
                doc.insert("faults", Value::Object(fdoc));
            }
        }

        let mut latency = Map::new();
        latency.insert(
            "mean_us",
            if requests == 0 {
                Value::Null
            } else {
                Value::F64(total_us as f64 / requests as f64)
            },
        );
        for (label, p) in [("p50_us", 0.50), ("p95_us", 0.95), ("p99_us", 0.99)] {
            latency.insert(
                label,
                self.latency_percentile_us(p).map_or(Value::Null, Value::U64),
            );
        }
        doc.insert("latency", Value::Object(latency));

        let mut cache = Map::new();
        cache.insert("hits", Value::U64(hits));
        cache.insert("misses", Value::U64(misses));
        cache.insert(
            "hit_rate",
            if hits + misses == 0 {
                Value::Null
            } else {
                Value::F64(hits as f64 / (hits + misses) as f64)
            },
        );
        cache.insert("entries", Value::U64(lru_len as u64));
        doc.insert("response_cache", Value::Object(cache));

        let mut pool = Map::new();
        pool.insert("workers", Value::U64(gauges.workers.load(Ordering::Relaxed) as u64));
        pool.insert("depth", Value::U64(gauges.pool_depth.load(Ordering::Relaxed) as u64));
        doc.insert("pool", Value::Object(pool));
        doc.insert(
            "open_connections",
            Value::U64(gauges.connections.load(Ordering::Relaxed) as u64),
        );

        serde_json::to_string(&Value::Object(doc)).unwrap_or_else(|_| "{}".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_track_the_histogram() {
        let m = Metrics::new();
        assert_eq!(m.latency_percentile_us(0.5), None);
        for _ in 0..90 {
            m.record(200, Duration::from_micros(40)); // bucket <=50
        }
        for _ in 0..10 {
            m.record(200, Duration::from_millis(20)); // bucket <=25ms
        }
        assert_eq!(m.latency_percentile_us(0.50), Some(50));
        assert_eq!(m.latency_percentile_us(0.90), Some(50));
        assert_eq!(m.latency_percentile_us(0.99), Some(25_000));
        assert_eq!(m.requests(), 100);
    }

    #[test]
    fn json_document_has_the_headline_fields() {
        let m = Metrics::new();
        m.record(200, Duration::from_micros(120));
        m.record(404, Duration::from_micros(80));
        m.record_cache(true);
        m.record_cache(false);
        m.record_shed();
        m.record_keepalive_reuse();
        m.record_keepalive_reuse();
        m.record_coalesced_waiter();
        m.record_evolve_cache(true);
        m.record_evolve_cache(false);
        m.record_evolve_computation();
        let gauges = Gauges::default();
        gauges.workers.store(4, Ordering::Relaxed);
        gauges.pool_depth.store(2, Ordering::Relaxed);
        gauges.connections.store(7, Ordering::Relaxed);
        m.record_deadline_expired();
        let info = SnapshotInfo {
            version: "test-v1",
            miner: "eclat-bitset",
            build_wall_ms: 1234,
            mining_wall_ms: 345,
        };
        let registry = RegistryStats { builds: 3, swaps: 1, build_failures: 2, ..Default::default() };
        let faults = Faults::new();
        faults.install(cuisine_exec::FaultPlan::parse("evolve.compute=delay:1@nth:1").unwrap());
        faults.fire("evolve.compute");
        let doc: serde::Value =
            serde_json::from_str(&m.to_json(&gauges, &info, 3, &registry, &faults)).unwrap();
        let doc = doc.as_object().unwrap();
        assert_eq!(doc.get("requests_total").unwrap().as_u64(), Some(2));
        assert_eq!(
            doc.get("snapshot_version").unwrap().as_str(),
            Some("test-v1")
        );
        assert_eq!(doc.get("miner").unwrap().as_str(), Some("eclat-bitset"));
        assert_eq!(doc.get("snapshot_build_ms").unwrap().as_u64(), Some(1234));
        assert_eq!(doc.get("mining_wall_ms").unwrap().as_u64(), Some(345));
        let classes = doc.get("requests_by_class").unwrap().as_object().unwrap();
        assert_eq!(classes.get("2xx").unwrap().as_u64(), Some(1));
        assert_eq!(classes.get("4xx").unwrap().as_u64(), Some(1));
        let cache = doc.get("response_cache").unwrap().as_object().unwrap();
        assert_eq!(cache.get("hit_rate").unwrap().as_f64(), Some(0.5));
        let pool = doc.get("pool").unwrap().as_object().unwrap();
        assert_eq!(pool.get("workers").unwrap().as_u64(), Some(4));
        assert_eq!(pool.get("depth").unwrap().as_u64(), Some(2));
        assert_eq!(doc.get("requests_shed").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("keepalive_reuses").unwrap().as_u64(), Some(2));
        assert_eq!(doc.get("coalesced_waiters").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("evolve_cache_hits").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("evolve_cache_misses").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("evolve_computations").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("registry_builds").unwrap().as_u64(), Some(3));
        assert_eq!(doc.get("registry_swaps").unwrap().as_u64(), Some(1));
        assert_eq!(
            doc.get("registry_coalesced_registrations").unwrap().as_u64(),
            Some(0)
        );
        assert_eq!(doc.get("corpora").unwrap().as_array().unwrap().len(), 0);
        assert_eq!(doc.get("open_connections").unwrap().as_u64(), Some(7));
        assert_eq!(doc.get("registry_build_failures").unwrap().as_u64(), Some(2));
        assert_eq!(doc.get("deadline_expired").unwrap().as_u64(), Some(1));
        // Process-wide counter (other tests may poison locks on purpose),
        // so assert presence rather than an exact value.
        assert!(doc.get("poisoned_lock_recoveries").unwrap().as_u64().is_some());
        assert_eq!(doc.get("fault_firings").unwrap().as_u64(), Some(1));
        let fdoc = doc.get("faults").unwrap().as_object().unwrap();
        assert_eq!(
            fdoc.get("spec").unwrap().as_str(),
            Some("evolve.compute=delay:1@nth:1")
        );
        let points = fdoc.get("points").unwrap().as_array().unwrap();
        assert_eq!(points.len(), 1);
        let row = points[0].as_object().unwrap();
        assert_eq!(row.get("point").unwrap().as_str(), Some("evolve.compute"));
        assert_eq!(row.get("fired").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn faults_report_null_without_a_plan() {
        let m = Metrics::new();
        let info =
            SnapshotInfo { version: "v", miner: "fpgrowth", build_wall_ms: 0, mining_wall_ms: 0 };
        let doc: serde::Value = serde_json::from_str(&m.to_json(
            &Gauges::default(),
            &info,
            0,
            &RegistryStats::default(),
            &Faults::new(),
        ))
        .unwrap();
        let doc = doc.as_object().unwrap();
        assert_eq!(doc.get("fault_firings").unwrap().as_u64(), Some(0));
        assert_eq!(doc.get("faults"), Some(&serde::Value::Null));
        assert_eq!(doc.get("worker_panics").unwrap().as_u64(), Some(0));
    }
}
