//! A small LRU map for cached responses.
//!
//! Keys are canonicalized request keys ([`crate::http::canonical_key`]);
//! values are whole [`Response`](crate::http::Response)s whose bodies are
//! `Arc`-shared, so a hit costs one `HashMap` probe and one recency
//! update, never a body copy.
//!
//! Implementation: a `HashMap` from key to `(recency tick, value)` plus a
//! `BTreeMap` from tick to key as the recency index. Both reads and writes
//! touch the tick, eviction removes the minimum tick — O(log n) per
//! operation with plain `std` collections and no `unsafe` pointer chains.

use std::collections::{BTreeMap, HashMap};

/// A least-recently-used map with a fixed capacity.
///
/// `capacity == 0` disables the cache: `get` always misses and `insert` is
/// a no-op (useful to A/B the cache from the CLI).
#[derive(Debug)]
pub struct Lru<V> {
    capacity: usize,
    tick: u64,
    map: HashMap<String, (u64, V)>,
    order: BTreeMap<u64, String>,
}

impl<V: Clone> Lru<V> {
    /// Create a cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Lru { capacity, tick: 0, map: HashMap::new(), order: BTreeMap::new() }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Look up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &str) -> Option<V> {
        let tick = self.next_tick();
        let (old_tick, value) = self.map.get_mut(key)?;
        let previous = std::mem::replace(old_tick, tick);
        let value = value.clone();
        match self.order.remove(&previous) {
            Some(slot) => {
                self.order.insert(tick, slot);
                Some(value)
            }
            // Recency index out of sync (should be unreachable): drop the
            // orphaned entry and report a miss instead of panicking on a
            // request worker.
            None => {
                self.map.remove(key);
                None
            }
        }
    }

    /// Insert (or replace) `key`, evicting the least recently used entry
    /// if the cache is full.
    pub fn insert(&mut self, key: String, value: V) {
        if self.capacity == 0 {
            return;
        }
        let tick = self.next_tick();
        if let Some((old_tick, _)) = self.map.remove(&key) {
            self.order.remove(&old_tick);
        } else if self.map.len() >= self.capacity {
            if let Some((&oldest, _)) = self.order.iter().next() {
                if let Some(evicted) = self.order.remove(&oldest) {
                    self.map.remove(&evicted);
                }
            }
        }
        self.order.insert(tick, key.clone());
        self.map.insert(key, (tick, value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used_in_order() {
        let mut lru = Lru::new(2);
        lru.insert("a".into(), 1);
        lru.insert("b".into(), 2);
        lru.insert("c".into(), 3); // evicts "a"
        assert_eq!(lru.get("a"), None);
        assert_eq!(lru.get("b"), Some(2));
        assert_eq!(lru.get("c"), Some(3));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn get_refreshes_recency() {
        let mut lru = Lru::new(2);
        lru.insert("a".into(), 1);
        lru.insert("b".into(), 2);
        assert_eq!(lru.get("a"), Some(1)); // "b" is now the LRU entry
        lru.insert("c".into(), 3); // evicts "b"
        assert_eq!(lru.get("b"), None);
        assert_eq!(lru.get("a"), Some(1));
        assert_eq!(lru.get("c"), Some(3));
    }

    #[test]
    fn reinsert_replaces_value_and_recency() {
        let mut lru = Lru::new(2);
        lru.insert("a".into(), 1);
        lru.insert("b".into(), 2);
        lru.insert("a".into(), 10); // refresh "a"; "b" becomes LRU
        lru.insert("c".into(), 3); // evicts "b"
        assert_eq!(lru.get("a"), Some(10));
        assert_eq!(lru.get("b"), None);
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let mut lru = Lru::new(0);
        lru.insert("a".into(), 1);
        assert_eq!(lru.get("a"), None);
        assert!(lru.is_empty());
    }

    #[test]
    fn long_mixed_sequence_stays_consistent() {
        let mut lru = Lru::new(8);
        for i in 0..200u32 {
            lru.insert(format!("k{}", i % 13), i);
            let _ = lru.get(&format!("k{}", (i * 7) % 13));
            assert!(lru.len() <= 8);
        }
        // Map and recency index agree on membership.
        assert_eq!(lru.map.len(), lru.order.len());
        for key in lru.order.values() {
            assert!(lru.map.contains_key(key));
        }
    }
}
