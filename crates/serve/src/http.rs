//! Minimal, bounded HTTP/1.1 request parsing and response serialization.
//!
//! Built directly on `std::io` — the container has no registry access, so
//! there is no hyper/axum to lean on (see `vendor/README.md`). The subset
//! implemented is exactly what the analytics endpoints need:
//!
//! * `GET`/`POST` with a path, a query string, and headers;
//! * bounded everything: request line ≤ [`MAX_REQUEST_LINE`], each header
//!   line ≤ [`MAX_HEADER_LINE`], at most [`MAX_HEADERS`] headers, body ≤
//!   [`MAX_BODY`] (`Content-Length` required for bodies; chunked encoding
//!   is answered with `501`);
//! * strict parsing: any malformed input yields an [`HttpError`] with a
//!   4xx/5xx status — **never** a panic (property-tested in
//!   `tests/http_properties.rs`);
//! * **incremental framing** ([`FrameReader`]): bytes arrive in arbitrary
//!   chunks on a persistent connection and are assembled into complete
//!   requests without blocking, which is what HTTP/1.1 keep-alive and
//!   pipelining need. A malformed frame poisons the reader — the caller
//!   answers `400` and closes, because resynchronizing inside a corrupted
//!   stream is guesswork;
//! * `Connection: close` and HTTP/1.0 defaults are honored per request
//!   ([`FramedRequest::close`]); everything else keeps the connection
//!   open for reuse.
//!
//! The blocking [`read_request`] is a thin loop over [`FrameReader`], so
//! the one-shot and persistent paths cannot drift apart.

use std::io::{BufRead, Write};
use std::sync::Arc;

/// Maximum request-line length in bytes.
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Maximum single header-line length in bytes.
pub const MAX_HEADER_LINE: usize = 8 * 1024;
/// Maximum number of headers.
pub const MAX_HEADERS: usize = 64;
/// Maximum request-body length in bytes.
pub const MAX_BODY: usize = 64 * 1024;

/// Request methods understood by the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// HTTP GET.
    Get,
    /// HTTP POST.
    Post,
    /// HTTP DELETE (admin API: corpus retirement).
    Delete,
}

impl Method {
    /// Canonical spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Delete => "DELETE",
        }
    }
}

/// A parse/handling failure carrying the HTTP status to answer with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// Response status code (4xx/5xx).
    pub status: u16,
    /// Human-readable reason, returned in the JSON error body.
    pub message: String,
}

impl HttpError {
    /// Build an error with an explicit status.
    pub fn new(status: u16, message: impl Into<String>) -> Self {
        HttpError { status, message: message.into() }
    }

    /// Shorthand for a `400 Bad Request`.
    pub fn bad_request(message: impl Into<String>) -> Self {
        Self::new(400, message)
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.status, self.message)
    }
}

impl std::error::Error for HttpError {}

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Percent-decoded path (always starts with `/`).
    pub path: String,
    /// Percent-decoded query parameters in request order.
    pub query: Vec<(String, String)>,
    /// Headers with lowercased names, in request order.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// First query parameter with the given name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

fn hex_value(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Percent-decode a path or query component.
///
/// `plus_as_space` enables the `application/x-www-form-urlencoded` rule of
/// decoding `+` to a space (used for query components, not paths). Invalid
/// escapes and non-UTF-8 results are a `400`.
pub fn percent_decode(s: &str, plus_as_space: bool) -> Result<String, HttpError> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while let Some(&b) = bytes.get(i) {
        match b {
            b'%' => {
                let (hi, lo) = match (bytes.get(i + 1), bytes.get(i + 2)) {
                    (Some(&hi), Some(&lo)) => (hi, lo),
                    _ => return Err(HttpError::bad_request("truncated percent escape")),
                };
                let (hi, lo) = match (hex_value(hi), hex_value(lo)) {
                    (Some(hi), Some(lo)) => (hi, lo),
                    _ => return Err(HttpError::bad_request("invalid percent escape")),
                };
                out.push(hi << 4 | lo);
                i += 3;
            }
            b'+' if plus_as_space => {
                out.push(b' ');
                i += 1;
            }
            other => {
                out.push(other);
                i += 1;
            }
        }
    }
    String::from_utf8(out)
        .map_err(|_| HttpError::bad_request("percent escapes decode to invalid UTF-8"))
}

/// Percent-encode a decoded component for canonical cache keys.
///
/// Unreserved characters (RFC 3986) pass through; everything else becomes
/// uppercase `%XX`, so every spelling of the same decoded string
/// canonicalizes identically.
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' | b'/' => {
                out.push(b as char);
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Parse a raw query string into decoded `(key, value)` pairs.
///
/// Empty segments (`a=1&&b=2`) are skipped; a segment without `=` becomes
/// a key with an empty value.
pub fn parse_query(raw: &str) -> Result<Vec<(String, String)>, HttpError> {
    let mut out = Vec::new();
    for segment in raw.split('&') {
        if segment.is_empty() {
            continue;
        }
        let (k, v) = segment.split_once('=').unwrap_or((segment, ""));
        out.push((percent_decode(k, true)?, percent_decode(v, true)?));
    }
    Ok(out)
}

/// A parsed request line: `(method, decoded path, decoded query pairs)`.
pub type RequestLine = (Method, String, Vec<(String, String)>);

/// Parse an HTTP/1.x request line into `(method, path, query)`.
///
/// Strict shape: `METHOD SP request-target SP HTTP/1.[01]`. Unknown
/// methods are `405`, other protocol versions `505`, everything else
/// malformed is `400`.
pub fn parse_request_line(line: &str) -> Result<RequestLine, HttpError> {
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next())
    {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(HttpError::bad_request("malformed request line")),
    };
    let method = match method {
        "GET" => Method::Get,
        "POST" => Method::Post,
        "DELETE" => Method::Delete,
        "HEAD" | "PUT" | "OPTIONS" | "PATCH" | "TRACE" | "CONNECT" => {
            return Err(HttpError::new(405, format!("method {method} not supported")));
        }
        _ => return Err(HttpError::bad_request("unrecognized method token")),
    };
    match version {
        "HTTP/1.1" | "HTTP/1.0" => {}
        v if v.starts_with("HTTP/") => {
            return Err(HttpError::new(505, format!("unsupported protocol version {v}")));
        }
        _ => return Err(HttpError::bad_request("malformed protocol version")),
    }
    if !target.starts_with('/') {
        return Err(HttpError::bad_request("request target must be an absolute path"));
    }
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let path = percent_decode(raw_path, false)?;
    if path.bytes().any(|b| b.is_ascii_control()) {
        return Err(HttpError::bad_request("control characters in path"));
    }
    Ok((method, path, parse_query(raw_query)?))
}

/// Parse one header line into a `(lowercased-name, trimmed-value)` pair.
pub fn parse_header_line(line: &str) -> Result<(String, String), HttpError> {
    let (name, value) =
        line.split_once(':').ok_or_else(|| HttpError::bad_request("header line without colon"))?;
    if name.is_empty()
        || !name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.'))
    {
        return Err(HttpError::bad_request("invalid header name"));
    }
    let value = value.trim();
    if value.bytes().any(|b| b.is_ascii_control() && b != b'\t') {
        return Err(HttpError::bad_request("control characters in header value"));
    }
    Ok((name.to_ascii_lowercase(), value.to_string()))
}

/// Decide whether a request asks to end the connection after its response.
///
/// HTTP/1.1 defaults to keep-alive unless a `close` token appears;
/// HTTP/1.0 defaults to close unless a `keep-alive` token appears.
fn connection_wants_close(header: Option<&str>, http10: bool) -> bool {
    match header {
        Some(value) => {
            let mut close = false;
            let mut keep = false;
            for token in value.split(',') {
                let token = token.trim();
                if token.eq_ignore_ascii_case("close") {
                    close = true;
                } else if token.eq_ignore_ascii_case("keep-alive") {
                    keep = true;
                }
            }
            close || (http10 && !keep)
        }
        None => http10,
    }
}

/// One request recovered from a persistent connection, plus the connection
/// disposition it implies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FramedRequest {
    /// The parsed request.
    pub request: Request,
    /// True when the connection must close after this request's response
    /// (`Connection: close`, or HTTP/1.0 without an explicit `keep-alive`).
    pub close: bool,
}

/// Result of asking a [`FrameReader`] for the next request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A complete request was recovered; its bytes have been consumed.
    Request(FramedRequest),
    /// The buffered bytes do not yet hold a complete request.
    NeedMore,
    /// The stream is corrupt. The caller must answer with the error's
    /// status and close: after a framing error the request boundary is
    /// unknowable, so the reader stays poisoned and repeats this answer.
    Malformed(HttpError),
}

/// Head of a request whose body has not fully arrived yet.
#[derive(Debug)]
struct PendingBody {
    method: Method,
    path: String,
    query: Vec<(String, String)>,
    headers: Vec<(String, String)>,
    close: bool,
    /// Body bytes still expected (`Content-Length`, already bounds-checked).
    need: usize,
}

/// Incremental HTTP/1.x request framer for persistent connections.
///
/// Feed raw bytes in whatever chunks the socket delivers
/// ([`FrameReader::feed`]), then drain complete requests
/// ([`FrameReader::next_frame`]). The reader enforces exactly the bounds
/// documented at the [module level](self) — oversized lines and header
/// counts are rejected *incrementally*, before the terminator arrives, so
/// an attacker cannot buffer unbounded garbage by withholding a newline.
///
/// Pipelining falls out for free: several requests fed at once are
/// returned one [`Frame::Request`] at a time, each consuming its own
/// bytes. A single reusable reader per connection is the intended shape —
/// internal storage is retained across requests.
#[derive(Debug, Default)]
pub struct FrameReader {
    /// Unconsumed stream bytes. Complete requests are drained off the
    /// front; anything left is the (partial) next request.
    buf: Vec<u8>,
    /// Scan resume offset into `buf` (bytes before it are already framed
    /// into `lines` or belong to a pending body).
    scan: usize,
    /// Start offset of the line currently being scanned.
    line_start: usize,
    /// Spans `(start, end)` of completed head lines; `lines[0]` is the
    /// request line, the rest are header lines.
    lines: Vec<(usize, usize)>,
    /// Parsed head awaiting `need` more body bytes.
    pending: Option<PendingBody>,
    /// Set once a frame fails to parse; never cleared.
    failed: Option<HttpError>,
}

impl FrameReader {
    /// An empty reader at a request boundary.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Append raw bytes received from the connection.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// True once a malformed frame has poisoned the stream.
    pub fn is_failed(&self) -> bool {
        self.failed.is_some()
    }

    /// True when bytes of an incomplete request are buffered — the caller
    /// uses this to tell a *stalled* request (worth a `408`) from a clean
    /// idle connection (safe to close silently).
    pub fn mid_frame(&self) -> bool {
        self.pending.is_some() || !self.buf.is_empty()
    }

    /// Bytes currently buffered (partial next request).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    fn fail(&mut self, error: HttpError) -> Frame {
        self.failed = Some(error.clone());
        Frame::Malformed(error)
    }

    /// Decode one head-line span as UTF-8.
    fn line_str(&self, span: (usize, usize)) -> Result<&str, HttpError> {
        let bytes = self.buf.get(span.0..span.1).unwrap_or_default();
        std::str::from_utf8(bytes)
            .map_err(|_| HttpError::bad_request("non-UTF-8 bytes in header section"))
    }

    /// Parse the recorded head lines into a [`PendingBody`], applying the
    /// same body rules as the original blocking parser (`501` for
    /// non-identity transfer encodings, `400`/`413` for bad or oversized
    /// `Content-Length`, `411` for a POST without one).
    fn parse_head(&self) -> Result<PendingBody, HttpError> {
        let mut spans = self.lines.iter();
        let first = spans.next().ok_or_else(|| HttpError::bad_request("malformed request line"))?;
        let line = self.line_str(*first)?;
        let (method, path, query) = parse_request_line(line)?;
        let http10 = line.ends_with("HTTP/1.0");
        let mut headers = Vec::with_capacity(self.lines.len().saturating_sub(1));
        for span in spans {
            headers.push(parse_header_line(self.line_str(*span)?)?);
        }
        let header =
            |name: &str| headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str());
        if header("transfer-encoding").is_some_and(|v| !v.eq_ignore_ascii_case("identity")) {
            return Err(HttpError::new(501, "transfer-encoding is not supported"));
        }
        let need = match header("content-length") {
            Some(len) => {
                let len: usize =
                    len.parse().map_err(|_| HttpError::bad_request("invalid content-length"))?;
                if len > MAX_BODY {
                    return Err(HttpError::new(413, format!("body exceeds {MAX_BODY} bytes")));
                }
                len
            }
            None if method == Method::Post => {
                return Err(HttpError::new(411, "POST requires content-length"));
            }
            None => 0,
        };
        let close = connection_wants_close(header("connection"), http10);
        Ok(PendingBody { method, path, query, headers, close, need })
    }

    /// Complete the pending request if its whole body has arrived, consume
    /// its bytes, and reset to the next request boundary.
    fn try_finish_body(&mut self) -> Frame {
        let need = match &self.pending {
            Some(pending) => pending.need,
            None => return Frame::NeedMore,
        };
        if self.buf.len().saturating_sub(self.scan) < need {
            return Frame::NeedMore;
        }
        let Some(pending) = self.pending.take() else {
            return Frame::NeedMore;
        };
        let body_end = self.scan + need;
        let body = self.buf.get(self.scan..body_end).unwrap_or_default().to_vec();
        self.buf.drain(..body_end.min(self.buf.len()));
        self.scan = 0;
        self.line_start = 0;
        self.lines.clear();
        Frame::Request(FramedRequest {
            request: Request {
                method: pending.method,
                path: pending.path,
                query: pending.query,
                headers: pending.headers,
                body,
            },
            close: pending.close,
        })
    }

    /// Recover the next complete request from the buffered bytes.
    pub fn next_frame(&mut self) -> Frame {
        if let Some(error) = &self.failed {
            return Frame::Malformed(error.clone());
        }
        while self.pending.is_none() {
            let tail = self.buf.get(self.scan..).unwrap_or_default();
            let Some(rel) = tail.iter().position(|&b| b == b'\n') else {
                // No newline yet: enforce the line bound on the partial
                // line so withheld terminators cannot grow the buffer.
                let partial = self.buf.len().saturating_sub(self.line_start);
                let max =
                    if self.lines.is_empty() { MAX_REQUEST_LINE } else { MAX_HEADER_LINE };
                if partial > max {
                    return self.fail(HttpError::new(431, "header section line too long"));
                }
                self.scan = self.buf.len();
                return Frame::NeedMore;
            };
            let newline = self.scan + rel;
            let mut end = newline;
            if end > self.line_start && self.buf.get(end - 1).copied() == Some(b'\r') {
                end -= 1;
            }
            let len = end.saturating_sub(self.line_start);
            let max = if self.lines.is_empty() { MAX_REQUEST_LINE } else { MAX_HEADER_LINE };
            if len > max {
                return self.fail(HttpError::new(431, "header section line too long"));
            }
            let span = (self.line_start, end);
            self.scan = newline + 1;
            self.line_start = self.scan;
            if len == 0 {
                if self.lines.is_empty() {
                    // An empty request line gets the same answer the
                    // blocking parser gave it.
                    return self.fail(HttpError::bad_request("malformed request line"));
                }
                // Blank line: the head is complete.
                match self.parse_head() {
                    Ok(pending) => {
                        self.pending = Some(pending);
                        self.lines.clear();
                    }
                    Err(error) => return self.fail(error),
                }
            } else {
                // `lines` holds the request line plus one span per header,
                // so the cap trips when header number MAX_HEADERS + 1 lands.
                if self.lines.len() > MAX_HEADERS {
                    return self.fail(HttpError::new(431, "too many headers"));
                }
                self.lines.push(span);
            }
        }
        self.try_finish_body()
    }
}

/// Read and parse one full request from a buffered stream, enforcing every
/// bound documented at the [module level](self).
///
/// This is the one-shot form of [`FrameReader`] — a read loop feeding the
/// framer — used by blocking callers (the test client, simple tools). EOF
/// before any byte is a distinguishable `400` ("connection closed before
/// request"); EOF mid-request is a generic `400`; a read timeout is `408`.
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Request, HttpError> {
    let mut framer = FrameReader::new();
    let mut chunk = [0u8; 1024];
    loop {
        match framer.next_frame() {
            Frame::Request(framed) => return Ok(framed.request),
            Frame::Malformed(error) => return Err(error),
            Frame::NeedMore => {}
        }
        match reader.read(&mut chunk) {
            Ok(0) => {
                return Err(if framer.mid_frame() {
                    HttpError::bad_request("unexpected end of stream")
                } else {
                    HttpError::bad_request("connection closed before request")
                });
            }
            Ok(n) => framer.feed(chunk.get(..n).unwrap_or_default()),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(HttpError::new(408, "timed out reading request"));
            }
            Err(_) => return Err(HttpError::bad_request("I/O error reading request")),
        }
    }
}

/// Canonical cache key for a request: method, path with redundant trailing
/// slash removed, and the query re-encoded with sorted parameters — so
/// `/table1?a=1&b=2`, `/table1/?b=2&a=1`, and `/table1?b=%32&a=1` all map
/// to one key.
pub fn canonical_key(method: Method, path: &str, query: &[(String, String)]) -> String {
    let trimmed = if path.len() > 1 { path.trim_end_matches('/') } else { path };
    let trimmed = if trimmed.is_empty() { "/" } else { trimmed };
    let mut sorted: Vec<&(String, String)> = query.iter().collect();
    sorted.sort();
    let mut key = format!("{} {}", method.as_str(), percent_encode(trimmed));
    for (i, (k, v)) in sorted.into_iter().enumerate() {
        key.push(if i == 0 { '?' } else { '&' });
        key.push_str(&percent_encode(k));
        key.push('=');
        key.push_str(&percent_encode(v));
    }
    key
}

/// Reason phrase for the status codes this server emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// A response: status, content type, and a shared body.
///
/// The body is an `Arc` so the LRU cache and snapshot store can hand out
/// hits without copying the payload.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Arc<Vec<u8>>,
}

impl Response {
    /// A `200 OK` JSON response over a shared body.
    pub fn json_shared(body: Arc<Vec<u8>>) -> Self {
        Response { status: 200, content_type: "application/json", body }
    }

    /// A JSON response from an owned string.
    pub fn json(status: u16, body: String) -> Self {
        Response { status, content_type: "application/json", body: Arc::new(body.into_bytes()) }
    }

    /// A JSON error body `{"error": message, "status": status}`.
    pub fn error(status: u16, message: &str) -> Self {
        let mut map = serde::Map::new();
        map.insert("error", serde::Value::String(message.to_string()));
        map.insert("status", serde::Value::U64(u64::from(status)));
        let body = serde_json::to_string(&serde::Value::Object(map))
            .unwrap_or_else(|_| "{\"error\":\"internal\"}".to_string());
        Response::json(status, body)
    }

    /// Serialize the full response (status line, headers, body) into a
    /// byte buffer — the keep-alive path's write primitive. Appending to a
    /// `Vec` cannot fail, so the connection loop batches pipelined
    /// responses into one buffer and flushes them with a single syscall.
    pub fn append_to(&self, out: &mut Vec<u8>, keep_alive: bool) {
        let connection = if keep_alive { "keep-alive" } else { "close" };
        out.extend_from_slice(
            format!(
                "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\nserver: cuisine-serve\r\n\r\n",
                self.status,
                status_reason(self.status),
                self.content_type,
                self.body.len(),
                connection
            )
            .as_bytes(),
        );
        out.extend_from_slice(&self.body);
    }

    /// Serialize the full response (status line, headers, body) to `w`
    /// with `Connection: close` semantics — the one-shot form of
    /// [`Response::append_to`].
    pub fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        let mut out = Vec::with_capacity(self.body.len() + 128);
        self.append_to(&mut out, false);
        w.write_all(&out)?;
        w.flush()
    }
}

impl From<&HttpError> for Response {
    fn from(e: &HttpError) -> Self {
        Response::error(e.status, &e.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_a_plain_get() {
        let req = parse("GET /table1 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.path, "/table1");
        assert!(req.query.is_empty());
        assert_eq!(req.header("host"), Some("x"));
    }

    #[test]
    fn parses_query_and_percent_escapes() {
        let req = parse("GET /fig4/IT%41?mode=category&x=a+b HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/fig4/ITA");
        assert_eq!(req.query_param("mode"), Some("category"));
        assert_eq!(req.query_param("x"), Some("a b"));
    }

    #[test]
    fn post_reads_body_exactly() {
        let req = parse("POST /evolve HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcd").unwrap();
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn post_without_length_is_411() {
        assert_eq!(parse("POST /evolve HTTP/1.1\r\n\r\n").unwrap_err().status, 411);
    }

    #[test]
    fn oversized_body_is_413() {
        let raw = format!("POST /evolve HTTP/1.1\r\ncontent-length: {}\r\n\r\n", MAX_BODY + 1);
        assert_eq!(parse(&raw).unwrap_err().status, 413);
    }

    #[test]
    fn malformed_lines_are_400() {
        for raw in [
            "\r\n\r\n",
            "GET\r\n\r\n",
            "GET /x\r\n\r\n",
            "GET /x HTTP/1.1 extra\r\n\r\n",
            "GET relative HTTP/1.1\r\n\r\n",
            "G3T /x HTTP/1.1\r\n\r\n",
            "GET /x%zz HTTP/1.1\r\n\r\n",
            "GET /x%f France HTTP/1.1\r\n\r\n",
            "GET /x HTTP/1.1\r\nbad header\r\n\r\n",
            "GET /x HTTP/1.1\r\n: empty\r\n\r\n",
        ] {
            assert_eq!(parse(raw).unwrap_err().status, 400, "raw={raw:?}");
        }
    }

    #[test]
    fn unsupported_method_and_version() {
        assert_eq!(parse("PUT /x HTTP/1.1\r\n\r\n").unwrap_err().status, 405);
        assert_eq!(parse("GET /x HTTP/2.0\r\n\r\n").unwrap_err().status, 505);
    }

    #[test]
    fn oversized_request_line_is_431() {
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE + 10));
        assert_eq!(parse(&raw).unwrap_err().status, 431);
    }

    #[test]
    fn too_many_headers_is_431() {
        let mut raw = String::from("GET /x HTTP/1.1\r\n");
        for i in 0..(MAX_HEADERS + 1) {
            raw.push_str(&format!("h{i}: v\r\n"));
        }
        raw.push_str("\r\n");
        assert_eq!(parse(&raw).unwrap_err().status, 431);
    }

    #[test]
    fn chunked_encoding_is_501() {
        let raw = "POST /evolve HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n";
        assert_eq!(parse(raw).unwrap_err().status, 501);
    }

    #[test]
    fn canonical_keys_normalize_order_slash_and_escapes() {
        let a = canonical_key(
            Method::Get,
            "/table1/",
            &[("b".into(), "2".into()), ("a".into(), "1".into())],
        );
        let b = canonical_key(
            Method::Get,
            "/table1",
            &[("a".into(), "1".into()), ("b".into(), "2".into())],
        );
        assert_eq!(a, b);
        assert_eq!(canonical_key(Method::Get, "/", &[]), "GET /");
        // Decoded equivalence: `%32` is `2`.
        let c = canonical_key(Method::Get, "/table1", &[("a".into(), "2".into())]);
        assert!(c.ends_with("a=2"));
    }

    #[test]
    fn framer_recovers_pipelined_requests_from_one_feed() {
        let mut framer = FrameReader::new();
        framer.feed(
            b"GET /table1 HTTP/1.1\r\nhost: x\r\n\r\nPOST /evolve HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcdGET /healthz HTTP/1.1\r\n\r\n",
        );
        let first = match framer.next_frame() {
            Frame::Request(f) => f,
            other => panic!("expected first request, got {other:?}"),
        };
        assert_eq!(first.request.path, "/table1");
        assert!(!first.close);
        let second = match framer.next_frame() {
            Frame::Request(f) => f,
            other => panic!("expected second request, got {other:?}"),
        };
        assert_eq!(second.request.method, Method::Post);
        assert_eq!(second.request.body, b"abcd");
        let third = match framer.next_frame() {
            Frame::Request(f) => f,
            other => panic!("expected third request, got {other:?}"),
        };
        assert_eq!(third.request.path, "/healthz");
        assert_eq!(framer.next_frame(), Frame::NeedMore);
        assert!(!framer.mid_frame());
    }

    #[test]
    fn framer_handles_byte_at_a_time_delivery() {
        let raw = b"POST /evolve?x=1 HTTP/1.1\r\ncontent-length: 3\r\nconnection: close\r\n\r\nxyz";
        let mut framer = FrameReader::new();
        for (i, &byte) in raw.iter().enumerate() {
            framer.feed(&[byte]);
            if i + 1 < raw.len() {
                assert_eq!(framer.next_frame(), Frame::NeedMore, "byte {i}");
                assert!(framer.mid_frame(), "byte {i}");
            }
        }
        match framer.next_frame() {
            Frame::Request(f) => {
                assert_eq!(f.request.body, b"xyz");
                assert_eq!(f.request.query_param("x"), Some("1"));
                assert!(f.close, "connection: close must be honored");
            }
            other => panic!("expected request, got {other:?}"),
        }
    }

    #[test]
    fn framer_close_semantics_by_version() {
        let cases = [
            ("GET / HTTP/1.1\r\n\r\n", false),
            ("GET / HTTP/1.1\r\nconnection: close\r\n\r\n", true),
            ("GET / HTTP/1.1\r\nconnection: Keep-Alive, Close\r\n\r\n", true),
            ("GET / HTTP/1.0\r\n\r\n", true),
            ("GET / HTTP/1.0\r\nconnection: keep-alive\r\n\r\n", false),
        ];
        for (raw, want_close) in cases {
            let mut framer = FrameReader::new();
            framer.feed(raw.as_bytes());
            match framer.next_frame() {
                Frame::Request(f) => assert_eq!(f.close, want_close, "raw={raw:?}"),
                other => panic!("raw={raw:?}: expected request, got {other:?}"),
            }
        }
    }

    #[test]
    fn framer_poisons_on_malformed_input_and_stays_poisoned() {
        let mut framer = FrameReader::new();
        framer.feed(b"NONSENSE\r\n\r\n");
        match framer.next_frame() {
            Frame::Malformed(e) => assert_eq!(e.status, 400),
            other => panic!("expected malformed, got {other:?}"),
        }
        assert!(framer.is_failed());
        // Further feeds cannot resurrect a corrupted stream.
        framer.feed(b"GET / HTTP/1.1\r\n\r\n");
        match framer.next_frame() {
            Frame::Malformed(e) => assert_eq!(e.status, 400),
            other => panic!("expected malformed, got {other:?}"),
        }
    }

    #[test]
    fn framer_enforces_line_bound_before_the_newline_arrives() {
        let mut framer = FrameReader::new();
        framer.feed(&vec![b'a'; MAX_REQUEST_LINE + 2]);
        match framer.next_frame() {
            Frame::Malformed(e) => assert_eq!(e.status, 431),
            other => panic!("expected 431, got {other:?}"),
        }
    }

    #[test]
    fn framer_accepts_exact_bounds() {
        // A request line of exactly MAX_REQUEST_LINE bytes and exactly
        // MAX_HEADERS headers must both still parse.
        let path_len = MAX_REQUEST_LINE - "GET / HTTP/1.1".len();
        let mut raw = format!("GET /{} HTTP/1.1\r\n", "a".repeat(path_len));
        assert_eq!(raw.len(), MAX_REQUEST_LINE + 2);
        for i in 0..MAX_HEADERS {
            raw.push_str(&format!("h{i}: v\r\n"));
        }
        raw.push_str("\r\n");
        let mut framer = FrameReader::new();
        framer.feed(raw.as_bytes());
        match framer.next_frame() {
            Frame::Request(f) => assert_eq!(f.request.headers.len(), MAX_HEADERS),
            other => panic!("expected request, got {other:?}"),
        }
    }

    #[test]
    fn read_request_matches_framer_on_a_plain_get() {
        // The one-shot reader is a loop over the framer; spot-check parity.
        let raw = "GET /fig4/ITA?mode=category HTTP/1.1\r\nhost: x\r\n\r\n";
        let via_read = parse(raw).unwrap();
        let mut framer = FrameReader::new();
        framer.feed(raw.as_bytes());
        match framer.next_frame() {
            Frame::Request(f) => assert_eq!(f.request, via_read),
            other => panic!("expected request, got {other:?}"),
        }
    }

    #[test]
    fn append_to_keep_alive_and_close_differ_only_in_connection_header() {
        let response = Response::json(200, "{\"ok\":true}".to_string());
        let (mut ka, mut close) = (Vec::new(), Vec::new());
        response.append_to(&mut ka, true);
        response.append_to(&mut close, false);
        let ka = String::from_utf8(ka).unwrap();
        let close = String::from_utf8(close).unwrap();
        assert!(ka.contains("connection: keep-alive\r\n"), "{ka}");
        assert!(close.contains("connection: close\r\n"), "{close}");
        assert_eq!(
            ka.replace("connection: keep-alive", "connection: close"),
            close,
            "bodies and all other headers must be byte-identical"
        );
    }

    #[test]
    fn responses_serialize_with_length() {
        let mut out = Vec::new();
        Response::error(404, "nope").write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"), "{text}");
        assert!(text.contains("content-length:"), "{text}");
        assert!(text.ends_with("{\"error\":\"nope\",\"status\":404}"), "{text}");
    }
}
