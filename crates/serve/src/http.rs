//! Minimal, bounded HTTP/1.1 request parsing and response serialization.
//!
//! Built directly on `std::io` — the container has no registry access, so
//! there is no hyper/axum to lean on (see `vendor/README.md`). The subset
//! implemented is exactly what the analytics endpoints need:
//!
//! * `GET`/`POST` with a path, a query string, and headers;
//! * bounded everything: request line ≤ [`MAX_REQUEST_LINE`], each header
//!   line ≤ [`MAX_HEADER_LINE`], at most [`MAX_HEADERS`] headers, body ≤
//!   [`MAX_BODY`] (`Content-Length` required for bodies; chunked encoding
//!   is answered with `501`);
//! * strict parsing: any malformed input yields an [`HttpError`] with a
//!   4xx/5xx status — **never** a panic (property-tested in
//!   `tests/http_properties.rs`);
//! * `Connection: close` semantics — one request per connection, which
//!   keeps the worker-pool accounting exact and suits a snapshot-serving
//!   workload where response reuse happens in the LRU layer, not in
//!   keep-alive connections.

use std::io::{BufRead, Write};
use std::sync::Arc;

/// Maximum request-line length in bytes.
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Maximum single header-line length in bytes.
pub const MAX_HEADER_LINE: usize = 8 * 1024;
/// Maximum number of headers.
pub const MAX_HEADERS: usize = 64;
/// Maximum request-body length in bytes.
pub const MAX_BODY: usize = 64 * 1024;

/// Request methods understood by the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// HTTP GET.
    Get,
    /// HTTP POST.
    Post,
}

impl Method {
    /// Canonical spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
        }
    }
}

/// A parse/handling failure carrying the HTTP status to answer with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// Response status code (4xx/5xx).
    pub status: u16,
    /// Human-readable reason, returned in the JSON error body.
    pub message: String,
}

impl HttpError {
    /// Build an error with an explicit status.
    pub fn new(status: u16, message: impl Into<String>) -> Self {
        HttpError { status, message: message.into() }
    }

    /// Shorthand for a `400 Bad Request`.
    pub fn bad_request(message: impl Into<String>) -> Self {
        Self::new(400, message)
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.status, self.message)
    }
}

impl std::error::Error for HttpError {}

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Percent-decoded path (always starts with `/`).
    pub path: String,
    /// Percent-decoded query parameters in request order.
    pub query: Vec<(String, String)>,
    /// Headers with lowercased names, in request order.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// First query parameter with the given name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

fn hex_value(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Percent-decode a path or query component.
///
/// `plus_as_space` enables the `application/x-www-form-urlencoded` rule of
/// decoding `+` to a space (used for query components, not paths). Invalid
/// escapes and non-UTF-8 results are a `400`.
pub fn percent_decode(s: &str, plus_as_space: bool) -> Result<String, HttpError> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while let Some(&b) = bytes.get(i) {
        match b {
            b'%' => {
                let (hi, lo) = match (bytes.get(i + 1), bytes.get(i + 2)) {
                    (Some(&hi), Some(&lo)) => (hi, lo),
                    _ => return Err(HttpError::bad_request("truncated percent escape")),
                };
                let (hi, lo) = match (hex_value(hi), hex_value(lo)) {
                    (Some(hi), Some(lo)) => (hi, lo),
                    _ => return Err(HttpError::bad_request("invalid percent escape")),
                };
                out.push(hi << 4 | lo);
                i += 3;
            }
            b'+' if plus_as_space => {
                out.push(b' ');
                i += 1;
            }
            other => {
                out.push(other);
                i += 1;
            }
        }
    }
    String::from_utf8(out)
        .map_err(|_| HttpError::bad_request("percent escapes decode to invalid UTF-8"))
}

/// Percent-encode a decoded component for canonical cache keys.
///
/// Unreserved characters (RFC 3986) pass through; everything else becomes
/// uppercase `%XX`, so every spelling of the same decoded string
/// canonicalizes identically.
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' | b'/' => {
                out.push(b as char);
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Parse a raw query string into decoded `(key, value)` pairs.
///
/// Empty segments (`a=1&&b=2`) are skipped; a segment without `=` becomes
/// a key with an empty value.
pub fn parse_query(raw: &str) -> Result<Vec<(String, String)>, HttpError> {
    let mut out = Vec::new();
    for segment in raw.split('&') {
        if segment.is_empty() {
            continue;
        }
        let (k, v) = segment.split_once('=').unwrap_or((segment, ""));
        out.push((percent_decode(k, true)?, percent_decode(v, true)?));
    }
    Ok(out)
}

/// A parsed request line: `(method, decoded path, decoded query pairs)`.
pub type RequestLine = (Method, String, Vec<(String, String)>);

/// Parse an HTTP/1.x request line into `(method, path, query)`.
///
/// Strict shape: `METHOD SP request-target SP HTTP/1.[01]`. Unknown
/// methods are `405`, other protocol versions `505`, everything else
/// malformed is `400`.
pub fn parse_request_line(line: &str) -> Result<RequestLine, HttpError> {
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next())
    {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(HttpError::bad_request("malformed request line")),
    };
    let method = match method {
        "GET" => Method::Get,
        "POST" => Method::Post,
        "HEAD" | "PUT" | "DELETE" | "OPTIONS" | "PATCH" | "TRACE" | "CONNECT" => {
            return Err(HttpError::new(405, format!("method {method} not supported")));
        }
        _ => return Err(HttpError::bad_request("unrecognized method token")),
    };
    match version {
        "HTTP/1.1" | "HTTP/1.0" => {}
        v if v.starts_with("HTTP/") => {
            return Err(HttpError::new(505, format!("unsupported protocol version {v}")));
        }
        _ => return Err(HttpError::bad_request("malformed protocol version")),
    }
    if !target.starts_with('/') {
        return Err(HttpError::bad_request("request target must be an absolute path"));
    }
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let path = percent_decode(raw_path, false)?;
    if path.bytes().any(|b| b.is_ascii_control()) {
        return Err(HttpError::bad_request("control characters in path"));
    }
    Ok((method, path, parse_query(raw_query)?))
}

/// Parse one header line into a `(lowercased-name, trimmed-value)` pair.
pub fn parse_header_line(line: &str) -> Result<(String, String), HttpError> {
    let (name, value) =
        line.split_once(':').ok_or_else(|| HttpError::bad_request("header line without colon"))?;
    if name.is_empty()
        || !name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.'))
    {
        return Err(HttpError::bad_request("invalid header name"));
    }
    let value = value.trim();
    if value.bytes().any(|b| b.is_ascii_control() && b != b'\t') {
        return Err(HttpError::bad_request("control characters in header value"));
    }
    Ok((name.to_ascii_lowercase(), value.to_string()))
}

/// Read one CRLF/LF-terminated line of at most `max` bytes (terminator
/// excluded) and return it without the terminator.
fn read_line_bounded<R: BufRead>(reader: &mut R, max: usize) -> Result<String, HttpError> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Err(HttpError::bad_request("connection closed before request"));
                }
                return Err(HttpError::bad_request("unexpected end of stream"));
            }
            Ok(_) => {
                let read = byte.first().copied().unwrap_or_default();
                if read == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line)
                        .map_err(|_| HttpError::bad_request("non-UTF-8 bytes in header section"));
                }
                if line.len() >= max {
                    return Err(HttpError::new(431, "header section line too long"));
                }
                line.push(read);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(HttpError::new(408, "timed out reading request"));
            }
            Err(_) => return Err(HttpError::bad_request("I/O error reading request")),
        }
    }
}

/// Read and parse one full request from a buffered stream, enforcing every
/// bound documented at the [module level](self).
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Request, HttpError> {
    let line = read_line_bounded(reader, MAX_REQUEST_LINE)?;
    let (method, path, query) = parse_request_line(&line)?;

    let mut headers = Vec::new();
    loop {
        let line = read_line_bounded(reader, MAX_HEADER_LINE)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::new(431, "too many headers"));
        }
        headers.push(parse_header_line(&line)?);
    }

    let mut request = Request { method, path, query, headers, body: Vec::new() };
    if request
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError::new(501, "transfer-encoding is not supported"));
    }
    if let Some(len) = request.header("content-length") {
        let len: usize = len
            .parse()
            .map_err(|_| HttpError::bad_request("invalid content-length"))?;
        if len > MAX_BODY {
            return Err(HttpError::new(413, format!("body exceeds {MAX_BODY} bytes")));
        }
        let mut body = vec![0u8; len];
        reader
            .read_exact(&mut body)
            .map_err(|_| HttpError::bad_request("body shorter than content-length"))?;
        request.body = body;
    } else if request.method == Method::Post {
        return Err(HttpError::new(411, "POST requires content-length"));
    }
    Ok(request)
}

/// Canonical cache key for a request: method, path with redundant trailing
/// slash removed, and the query re-encoded with sorted parameters — so
/// `/table1?a=1&b=2`, `/table1/?b=2&a=1`, and `/table1?b=%32&a=1` all map
/// to one key.
pub fn canonical_key(method: Method, path: &str, query: &[(String, String)]) -> String {
    let trimmed = if path.len() > 1 { path.trim_end_matches('/') } else { path };
    let trimmed = if trimmed.is_empty() { "/" } else { trimmed };
    let mut sorted: Vec<&(String, String)> = query.iter().collect();
    sorted.sort();
    let mut key = format!("{} {}", method.as_str(), percent_encode(trimmed));
    for (i, (k, v)) in sorted.into_iter().enumerate() {
        key.push(if i == 0 { '?' } else { '&' });
        key.push_str(&percent_encode(k));
        key.push('=');
        key.push_str(&percent_encode(v));
    }
    key
}

/// Reason phrase for the status codes this server emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// A response: status, content type, and a shared body.
///
/// The body is an `Arc` so the LRU cache and snapshot store can hand out
/// hits without copying the payload.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Arc<Vec<u8>>,
}

impl Response {
    /// A `200 OK` JSON response over a shared body.
    pub fn json_shared(body: Arc<Vec<u8>>) -> Self {
        Response { status: 200, content_type: "application/json", body }
    }

    /// A JSON response from an owned string.
    pub fn json(status: u16, body: String) -> Self {
        Response { status, content_type: "application/json", body: Arc::new(body.into_bytes()) }
    }

    /// A JSON error body `{"error": message, "status": status}`.
    pub fn error(status: u16, message: &str) -> Self {
        let mut map = serde::Map::new();
        map.insert("error", serde::Value::String(message.to_string()));
        map.insert("status", serde::Value::U64(u64::from(status)));
        let body = serde_json::to_string(&serde::Value::Object(map))
            .unwrap_or_else(|_| "{\"error\":\"internal\"}".to_string());
        Response::json(status, body)
    }

    /// Serialize the full response (status line, headers, body) to `w`.
    pub fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\nserver: cuisine-serve\r\n\r\n",
            self.status,
            status_reason(self.status),
            self.content_type,
            self.body.len()
        )?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

impl From<&HttpError> for Response {
    fn from(e: &HttpError) -> Self {
        Response::error(e.status, &e.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_a_plain_get() {
        let req = parse("GET /table1 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.path, "/table1");
        assert!(req.query.is_empty());
        assert_eq!(req.header("host"), Some("x"));
    }

    #[test]
    fn parses_query_and_percent_escapes() {
        let req = parse("GET /fig4/IT%41?mode=category&x=a+b HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/fig4/ITA");
        assert_eq!(req.query_param("mode"), Some("category"));
        assert_eq!(req.query_param("x"), Some("a b"));
    }

    #[test]
    fn post_reads_body_exactly() {
        let req = parse("POST /evolve HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcd").unwrap();
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn post_without_length_is_411() {
        assert_eq!(parse("POST /evolve HTTP/1.1\r\n\r\n").unwrap_err().status, 411);
    }

    #[test]
    fn oversized_body_is_413() {
        let raw = format!("POST /evolve HTTP/1.1\r\ncontent-length: {}\r\n\r\n", MAX_BODY + 1);
        assert_eq!(parse(&raw).unwrap_err().status, 413);
    }

    #[test]
    fn malformed_lines_are_400() {
        for raw in [
            "\r\n\r\n",
            "GET\r\n\r\n",
            "GET /x\r\n\r\n",
            "GET /x HTTP/1.1 extra\r\n\r\n",
            "GET relative HTTP/1.1\r\n\r\n",
            "G3T /x HTTP/1.1\r\n\r\n",
            "GET /x%zz HTTP/1.1\r\n\r\n",
            "GET /x%f France HTTP/1.1\r\n\r\n",
            "GET /x HTTP/1.1\r\nbad header\r\n\r\n",
            "GET /x HTTP/1.1\r\n: empty\r\n\r\n",
        ] {
            assert_eq!(parse(raw).unwrap_err().status, 400, "raw={raw:?}");
        }
    }

    #[test]
    fn unsupported_method_and_version() {
        assert_eq!(parse("PUT /x HTTP/1.1\r\n\r\n").unwrap_err().status, 405);
        assert_eq!(parse("GET /x HTTP/2.0\r\n\r\n").unwrap_err().status, 505);
    }

    #[test]
    fn oversized_request_line_is_431() {
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE + 10));
        assert_eq!(parse(&raw).unwrap_err().status, 431);
    }

    #[test]
    fn too_many_headers_is_431() {
        let mut raw = String::from("GET /x HTTP/1.1\r\n");
        for i in 0..(MAX_HEADERS + 1) {
            raw.push_str(&format!("h{i}: v\r\n"));
        }
        raw.push_str("\r\n");
        assert_eq!(parse(&raw).unwrap_err().status, 431);
    }

    #[test]
    fn chunked_encoding_is_501() {
        let raw = "POST /evolve HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n";
        assert_eq!(parse(raw).unwrap_err().status, 501);
    }

    #[test]
    fn canonical_keys_normalize_order_slash_and_escapes() {
        let a = canonical_key(
            Method::Get,
            "/table1/",
            &[("b".into(), "2".into()), ("a".into(), "1".into())],
        );
        let b = canonical_key(
            Method::Get,
            "/table1",
            &[("a".into(), "1".into()), ("b".into(), "2".into())],
        );
        assert_eq!(a, b);
        assert_eq!(canonical_key(Method::Get, "/", &[]), "GET /");
        // Decoded equivalence: `%32` is `2`.
        let c = canonical_key(Method::Get, "/table1", &[("a".into(), "2".into())]);
        assert!(c.ends_with("a=2"));
    }

    #[test]
    fn responses_serialize_with_length() {
        let mut out = Vec::new();
        Response::error(404, "nope").write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"), "{text}");
        assert!(text.contains("content-length:"), "{text}");
        assert!(text.ends_with("{\"error\":\"nope\",\"status\":404}"), "{text}");
    }
}
