//! `loadgen` — drive N concurrent clients against a live `serve` instance
//! and report throughput and latency percentiles.
//!
//! ```sh
//! cargo run --release -p cuisine-serve --bin loadgen -- \
//!     --addr 127.0.0.1:7878 [--clients 8] [--requests 200] \
//!     [--path /table1] [--evolve] [--keep-alive] [--pipeline-depth N] \
//!     [--json] [--workload NAME]
//! ```
//!
//! Each client runs its requests back-to-back on its own thread (closed
//! loop). By default every request opens a fresh connection (the
//! pre-keep-alive model, kept as the A/B baseline). With `--keep-alive`
//! each client holds one persistent connection for its whole run,
//! reconnecting only on error; `--pipeline-depth N` additionally writes N
//! requests back-to-back before reading the N responses (implies
//! `--keep-alive`). In pipelined mode a response's recorded latency runs
//! from the *batch* start, so depth inflates per-request latency while
//! raising throughput — compare latencies only at equal depth.
//!
//! `--path` may be a comma-separated list; clients rotate through it.
//! `--evolve` adds a deterministic `POST /evolve` to the mix. `--corpus`
//! takes a comma-separated list of registry keys and scopes every GET and
//! `/evolve` with `?corpus=KEY`, rotating across the keys — with
//! `--workload multi-corpus` that is the benchable mixed-registry run.
//! `--json` prints one `bench_serve/v1` entry object to stdout (human
//! summary goes to stderr) for collection into `BENCH_serve.json`.
//! Methodology notes live in EXPERIMENTS.md.
//!
//! `--deadline-ms N` stamps `X-Deadline-Ms: N` on every request (implies
//! `--keep-alive`) so runs against a faulted server exercise the 504
//! path. `--retry` turns each request into a bounded retrying roundtrip
//! (seeded backoff, honoring `retry_after_ms` hints; implies
//! `--keep-alive`, incompatible with pipelining).
//!
//! `--request "METHOD /path"` (with optional `--body JSON`) is a one-shot
//! admin mode: perform the single request, print the response body to
//! stdout, and exit 0 on a 2xx — how `ci.sh` drives the admin API without
//! curl.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use cuisine_bench::ExpOptions;
use cuisine_serve::client;
use serde::{Map, Value};

const USAGE: &str = "loadgen --addr HOST:PORT [--clients N] [--requests N] \
[--path /p1,/p2] [--corpus KEY1,KEY2] [--evolve] [--keep-alive] \
[--pipeline-depth N] [--deadline-ms N] [--retry] [--json] \
[--workload NAME] [--dump-metrics] [--request 'METHOD /path' [--body JSON]]";

const EVOLVE_BODY: &str = r#"{"cuisine":"ITA","model":"CM-R","seed":7,"replicates":4}"#;

fn exit_usage(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!("usage: {USAGE}");
    std::process::exit(2);
}

fn extra_value<T: std::str::FromStr>(extra: &[(String, String)], name: &str, default: T) -> T {
    match extra.iter().rev().find(|(k, _)| k == name) {
        None => default,
        Some((_, raw)) => raw
            .parse()
            .unwrap_or_else(|_| exit_usage(&format!("{name} has an invalid value {raw:?}"))),
    }
}

/// What one request slot does. Evolve carries its (possibly
/// corpus-scoped) target path so multi-corpus runs rotate POSTs too.
enum Slot<'a> {
    Get(&'a str),
    Evolve(&'a str),
}

/// The request mix: GET paths and `/evolve` targets, both expanded over
/// the `--corpus` keys so clients rotate across every (path, corpus)
/// combination.
struct Mix {
    paths: Vec<String>,
    evolve_paths: Vec<String>,
    with_evolve: bool,
}

impl Mix {
    fn new(paths: &[String], corpora: &[String], with_evolve: bool) -> Mix {
        Mix {
            paths: scope_paths(paths, corpora),
            evolve_paths: scope_paths(&["/evolve".to_string()], corpora),
            with_evolve,
        }
    }

    fn slot(&self, slot: usize) -> Slot<'_> {
        if self.with_evolve && slot % (self.paths.len() + 1) == self.paths.len() {
            let rotated = self.evolve_paths.get(slot % self.evolve_paths.len().max(1));
            Slot::Evolve(rotated.map_or("/evolve", String::as_str))
        } else {
            let paths = &self.paths;
            Slot::Get(&paths[slot % paths.len()])
        }
    }
}

/// Append `?corpus=KEY` (or `&corpus=KEY` on paths that already carry a
/// query) for every `(path, key)` pair; identity when no keys are given.
fn scope_paths(paths: &[String], corpora: &[String]) -> Vec<String> {
    if corpora.is_empty() {
        return paths.to_vec();
    }
    paths
        .iter()
        .flat_map(|path| {
            corpora.iter().map(move |key| {
                let sep = if path.contains('?') { '&' } else { '?' };
                format!("{path}{sep}corpus={key}")
            })
        })
        .collect()
}

fn main() {
    let (opts, extra) = ExpOptions::parse_with_or_exit(
        std::env::args(),
        &[
            "--addr",
            "--clients",
            "--requests",
            "--path",
            "--corpus",
            "--pipeline-depth",
            "--deadline-ms",
            "--workload",
            "--request",
            "--body",
        ],
        USAGE,
    );
    let with_evolve = opts.has_flag("--evolve");
    let json_out = opts.has_flag("--json");
    let retry = opts.has_flag("--retry");
    let mut keep_alive = opts.has_flag("--keep-alive");
    if let Some(unknown) = opts.flags.iter().find(|f| {
        !matches!(
            f.as_str(),
            "--evolve" | "--keep-alive" | "--retry" | "--json" | "--dump-metrics"
        )
    }) {
        exit_usage(&format!("unrecognized flag {unknown:?}"));
    }

    let addr: SocketAddr = match extra.iter().find(|(k, _)| k == "--addr") {
        None => exit_usage("--addr HOST:PORT is required"),
        Some((_, raw)) => raw
            .parse()
            .unwrap_or_else(|_| exit_usage(&format!("--addr has an invalid value {raw:?}"))),
    };

    // `--request "METHOD /path"`: one-shot admin mode. Print the response
    // body, exit 0 on 2xx — how ci.sh registers/retires corpora.
    if let Some((_, spec)) = extra.iter().rev().find(|(k, _)| k == "--request") {
        let (method, path) = spec
            .split_once(' ')
            .unwrap_or(("GET", spec.as_str()));
        let body = extra.iter().rev().find(|(k, _)| k == "--body").map(|(_, v)| v.as_str());
        match client::request_method(
            addr,
            method.trim(),
            path.trim(),
            body.map(str::as_bytes),
            Duration::from_secs(30),
        ) {
            Ok(response) => {
                eprintln!("{} {} -> {}", method.trim(), path.trim(), response.status);
                println!("{}", String::from_utf8_lossy(&response.body));
                std::process::exit(i32::from(!(200..300).contains(&response.status)));
            }
            Err(e) => {
                eprintln!("error: {method} {path} failed against {addr}: {e}");
                std::process::exit(1);
            }
        }
    }

    // `--dump-metrics`: fetch /metrics, print the raw JSON body, exit —
    // lets shell scripts (ci.sh) assert on live counters without curl.
    if opts.has_flag("--dump-metrics") {
        match client::get(addr, "/metrics", Duration::from_secs(10)) {
            Ok(response) if response.status == 200 => {
                println!("{}", String::from_utf8_lossy(&response.body));
                std::process::exit(0);
            }
            Ok(response) => {
                eprintln!("error: /metrics answered {}", response.status);
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("error: no server answering on {addr}: {e}");
                std::process::exit(1);
            }
        }
    }
    let clients: usize = extra_value(&extra, "--clients", 8);
    let requests: usize = extra_value(&extra, "--requests", 200);
    let depth: usize = extra_value(&extra, "--pipeline-depth", 1);
    if clients == 0 || requests == 0 || depth == 0 {
        exit_usage("--clients, --requests, and --pipeline-depth must be positive");
    }
    if depth > 1 {
        keep_alive = true; // pipelining only exists on a persistent connection
    }
    let deadline_ms = match extra_value::<u64>(&extra, "--deadline-ms", 0) {
        0 => None,
        ms => Some(ms),
    };
    if retry && depth > 1 {
        exit_usage("--retry waits out each response and cannot be pipelined");
    }
    if retry || deadline_ms.is_some() {
        keep_alive = true; // both ride the persistent-connection client
    }
    let paths: Vec<String> = extra_value::<String>(&extra, "--path", "/table1".into())
        .split(',')
        .map(str::to_string)
        .collect();
    let corpora: Vec<String> = extra_value::<String>(&extra, "--corpus", String::new())
        .split(',')
        .filter(|k| !k.is_empty())
        .map(str::to_string)
        .collect();
    let default_workload = if corpora.len() > 1 { "multi-corpus" } else { "mixed" };
    let workload: String = extra_value(&extra, "--workload", default_workload.to_string());
    let mix = Mix::new(&paths, &corpora, with_evolve);

    let timeout = Duration::from_secs(30);
    if client::get(addr, "/healthz", timeout).is_err() {
        eprintln!("error: no server answering on {addr} (start `serve` first)");
        std::process::exit(1);
    }

    eprintln!(
        "loadgen: {clients} clients x {requests} requests over {:?}{} against {addr} \
({}, pipeline depth {depth}, {} corpora{}{})",
        mix.paths,
        if with_evolve { " + POST /evolve" } else { "" },
        if keep_alive { "keep-alive" } else { "connection-per-request" },
        corpora.len().max(1),
        deadline_ms.map_or(String::new(), |ms| format!(", deadline {ms}ms")),
        if retry { ", retrying" } else { "" },
    );

    let wall = Instant::now();
    // One scoped thread per client, via the same fan-out primitive the
    // pipeline uses. Each entry: (latency, status or 0 on transport error).
    let per_client: Vec<Vec<(Duration, u16)>> =
        cuisine_exec::par_map_range(clients, Some(clients), |client_index| {
            if keep_alive {
                // Seed each client's backoff jitter by its index so the
                // whole run is reproducible yet clients don't thunder.
                let policy = retry.then(|| client::RetryPolicy {
                    seed: client_index as u64,
                    ..client::RetryPolicy::default()
                });
                run_keep_alive(
                    addr,
                    &mix,
                    client_index,
                    clients,
                    requests,
                    depth,
                    timeout,
                    deadline_ms,
                    policy,
                )
            } else {
                run_per_request(addr, &mix, client_index, clients, requests, timeout)
            }
        });
    let elapsed = wall.elapsed();

    let mut latencies: Vec<Duration> = Vec::with_capacity(clients * requests);
    let mut ok = 0usize;
    let mut shed = 0usize;
    let mut errors = 0usize;
    // Per-status counts (status 0 = transport error), ordered by code.
    let mut by_status: std::collections::BTreeMap<u16, u64> = std::collections::BTreeMap::new();
    for (latency, status) in per_client.into_iter().flatten() {
        match status {
            s if (200..300).contains(&s) => ok += 1,
            503 => shed += 1,
            _ => errors += 1,
        }
        *by_status.entry(status).or_insert(0) += 1;
        latencies.push(latency);
    }
    latencies.sort();
    let total = latencies.len();
    let pct = |p: f64| latencies[((p * total as f64).ceil() as usize).clamp(1, total) - 1];
    let mean = latencies.iter().sum::<Duration>() / total as u32;
    let throughput = total as f64 / elapsed.as_secs_f64();

    eprintln!("requests:    {total} ({ok} ok, {shed} shed/503, {errors} errors)");
    let breakdown: Vec<String> = by_status
        .iter()
        .map(|(status, count)| {
            if *status == 0 {
                format!("transport-error={count}")
            } else {
                format!("{status}={count}")
            }
        })
        .collect();
    eprintln!("by status:   {}", breakdown.join("  "));
    eprintln!("wall time:   {elapsed:.2?}");
    eprintln!("throughput:  {throughput:.0} req/s");
    eprintln!(
        "latency:     mean {mean:.2?}  p50 {:.2?}  p90 {:.2?}  p99 {:.2?}  max {:.2?}",
        pct(0.50),
        pct(0.90),
        pct(0.99),
        latencies[total - 1]
    );

    if json_out {
        let us = |d: Duration| Value::U64(d.as_micros().min(u128::from(u64::MAX)) as u64);
        let mut entry = Map::new();
        entry.insert("workload", Value::String(workload));
        entry.insert("paths", Value::String(mix.paths.join(",")));
        entry.insert("corpora", Value::U64(corpora.len().max(1) as u64));
        entry.insert("evolve", Value::Bool(with_evolve));
        entry.insert("keep_alive", Value::Bool(keep_alive));
        entry.insert("pipeline_depth", Value::U64(depth as u64));
        entry.insert("clients", Value::U64(clients as u64));
        entry.insert("requests", Value::U64(total as u64));
        entry.insert("ok", Value::U64(ok as u64));
        entry.insert("shed", Value::U64(shed as u64));
        entry.insert("errors", Value::U64(errors as u64));
        let mut statuses = Map::new();
        for (status, count) in &by_status {
            let key = if *status == 0 { "transport_error".to_string() } else { status.to_string() };
            statuses.insert(&key, Value::U64(*count));
        }
        entry.insert("status_counts", Value::Object(statuses));
        entry.insert("retry", Value::Bool(retry));
        match deadline_ms {
            Some(ms) => entry.insert("deadline_ms", Value::U64(ms)),
            None => entry.insert("deadline_ms", Value::Null),
        };
        entry.insert("wall_ms", Value::F64(elapsed.as_secs_f64() * 1000.0));
        entry.insert("throughput_rps", Value::F64(throughput));
        entry.insert("mean_us", us(mean));
        entry.insert("p50_us", us(pct(0.50)));
        entry.insert("p90_us", us(pct(0.90)));
        entry.insert("p99_us", us(pct(0.99)));
        entry.insert("max_us", us(latencies[total - 1]));
        println!(
            "{}",
            serde_json::to_string(&Value::Object(entry)).unwrap_or_default()
        );
    }
    if errors > 0 {
        std::process::exit(1);
    }
}

/// The original model: one fresh connection per request.
fn run_per_request(
    addr: SocketAddr,
    mix: &Mix,
    client_index: usize,
    clients: usize,
    requests: usize,
    timeout: Duration,
) -> Vec<(Duration, u16)> {
    let mut samples = Vec::with_capacity(requests);
    for i in 0..requests {
        let slot = mix.slot(client_index + i * clients);
        let started = Instant::now();
        let outcome = match slot {
            Slot::Evolve(path) => client::post_json(addr, path, EVOLVE_BODY, timeout),
            Slot::Get(path) => client::get(addr, path, timeout),
        };
        let status = outcome.map(|r| r.status).unwrap_or(0);
        samples.push((started.elapsed(), status));
    }
    samples
}

/// Keep-alive model: one persistent connection per client, optionally
/// pipelined `depth` requests at a time. A transport error fails the
/// whole outstanding batch and forces a reconnect. With a retry policy
/// (depth 1 only) each slot becomes a bounded retrying roundtrip; with a
/// deadline every request carries `X-Deadline-Ms`.
#[allow(clippy::too_many_arguments)]
fn run_keep_alive(
    addr: SocketAddr,
    mix: &Mix,
    client_index: usize,
    clients: usize,
    requests: usize,
    depth: usize,
    timeout: Duration,
    deadline_ms: Option<u64>,
    policy: Option<client::RetryPolicy>,
) -> Vec<(Duration, u16)> {
    let mut samples = Vec::with_capacity(requests);
    let mut conn: Option<client::Connection> = None;
    let mut i = 0usize;
    while i < requests {
        let batch = depth.min(requests - i);
        let started = Instant::now();
        if conn.is_none() {
            conn = client::Connection::open(addr, timeout).ok();
            if let Some(live) = conn.as_mut() {
                live.set_deadline_ms(deadline_ms);
            }
        }
        let Some(live) = conn.as_mut() else {
            for _ in 0..batch {
                samples.push((started.elapsed(), 0));
            }
            i += batch;
            continue;
        };
        if let Some(policy) = &policy {
            // Retry mode: one request at a time (batch is always 1); the
            // retrying roundtrip reconnects internally on transport error.
            let outcome = match mix.slot(client_index + i * clients) {
                Slot::Evolve(path) => {
                    live.roundtrip_retrying(path, Some(EVOLVE_BODY.as_bytes()), policy)
                }
                Slot::Get(path) => live.roundtrip_retrying(path, None, policy),
            };
            match outcome {
                Ok(response) => samples.push((started.elapsed(), response.status)),
                Err(_) => {
                    samples.push((started.elapsed(), 0));
                    conn = None;
                }
            }
            i += 1;
            continue;
        }
        let mut sent = 0usize;
        for b in 0..batch {
            let ok = match mix.slot(client_index + (i + b) * clients) {
                Slot::Evolve(path) => live.send(path, Some(EVOLVE_BODY.as_bytes())),
                Slot::Get(path) => live.send(path, None),
            };
            if ok.is_err() {
                break;
            }
            sent += 1;
        }
        let mut failed = sent < batch;
        for b in 0..batch {
            if b < sent && !failed {
                match live.recv() {
                    Ok(response) => {
                        samples.push((started.elapsed(), response.status));
                        continue;
                    }
                    Err(_) => failed = true,
                }
            }
            samples.push((started.elapsed(), 0));
        }
        if failed {
            conn = None;
        }
        i += batch;
    }
    samples
}
