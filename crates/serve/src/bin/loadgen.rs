//! `loadgen` — drive N concurrent clients against a live `serve` instance
//! and report throughput and latency percentiles.
//!
//! ```sh
//! cargo run --release -p cuisine-serve --bin loadgen -- \
//!     --addr 127.0.0.1:7878 [--clients 8] [--requests 200] \
//!     [--path /table1] [--evolve]
//! ```
//!
//! Each client runs its requests back-to-back on its own thread (closed
//! loop, one connection per request — the server's `Connection: close`
//! model). `--path` may be a comma-separated list; clients rotate through
//! it. `--evolve` adds a deterministic `POST /evolve` to the mix.
//! Methodology notes live in EXPERIMENTS.md.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use cuisine_bench::ExpOptions;
use cuisine_serve::client;

const USAGE: &str = "loadgen --addr HOST:PORT [--clients N] [--requests N] \
[--path /p1,/p2] [--evolve]";

const EVOLVE_BODY: &str = r#"{"cuisine":"ITA","model":"CM-R","seed":7,"replicates":4}"#;

fn exit_usage(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!("usage: {USAGE}");
    std::process::exit(2);
}

fn extra_value<T: std::str::FromStr>(extra: &[(String, String)], name: &str, default: T) -> T {
    match extra.iter().rev().find(|(k, _)| k == name) {
        None => default,
        Some((_, raw)) => raw
            .parse()
            .unwrap_or_else(|_| exit_usage(&format!("{name} has an invalid value {raw:?}"))),
    }
}

fn main() {
    let (opts, extra) = ExpOptions::parse_with_or_exit(
        std::env::args(),
        &["--addr", "--clients", "--requests", "--path"],
        USAGE,
    );
    let with_evolve = opts.has_flag("--evolve");
    if let Some(unknown) = opts.flags.iter().find(|f| f.as_str() != "--evolve") {
        exit_usage(&format!("unrecognized flag {unknown:?}"));
    }

    let addr: SocketAddr = match extra.iter().find(|(k, _)| k == "--addr") {
        None => exit_usage("--addr HOST:PORT is required"),
        Some((_, raw)) => raw
            .parse()
            .unwrap_or_else(|_| exit_usage(&format!("--addr has an invalid value {raw:?}"))),
    };
    let clients: usize = extra_value(&extra, "--clients", 8);
    let requests: usize = extra_value(&extra, "--requests", 200);
    if clients == 0 || requests == 0 {
        exit_usage("--clients and --requests must be positive");
    }
    let paths: Vec<String> = extra_value::<String>(&extra, "--path", "/table1".into())
        .split(',')
        .map(str::to_string)
        .collect();

    let timeout = Duration::from_secs(30);
    if client::get(addr, "/healthz", timeout).is_err() {
        eprintln!("error: no server answering on {addr} (start `serve` first)");
        std::process::exit(1);
    }

    eprintln!(
        "loadgen: {clients} clients x {requests} requests over {:?}{} against {addr}",
        paths,
        if with_evolve { " + POST /evolve" } else { "" }
    );

    let wall = Instant::now();
    // One scoped thread per client, via the same fan-out primitive the
    // pipeline uses. Each entry: (latency, status or 0 on transport error).
    let per_client: Vec<Vec<(Duration, u16)>> =
        cuisine_exec::par_map_range(clients, Some(clients), |client_index| {
            let mut samples = Vec::with_capacity(requests);
            for i in 0..requests {
                let slot = client_index + i * clients;
                let use_evolve = with_evolve && slot % (paths.len() + 1) == paths.len();
                let started = Instant::now();
                let outcome = if use_evolve {
                    client::post_json(addr, "/evolve", EVOLVE_BODY, timeout)
                } else {
                    client::get(addr, &paths[slot % paths.len()], timeout)
                };
                let status = outcome.map(|r| r.status).unwrap_or(0);
                samples.push((started.elapsed(), status));
            }
            samples
        });
    let elapsed = wall.elapsed();

    let mut latencies: Vec<Duration> = Vec::with_capacity(clients * requests);
    let mut ok = 0usize;
    let mut shed = 0usize;
    let mut errors = 0usize;
    for (latency, status) in per_client.into_iter().flatten() {
        match status {
            200 => ok += 1,
            503 => shed += 1,
            0 => errors += 1,
            _ => errors += 1,
        }
        latencies.push(latency);
    }
    latencies.sort();
    let total = latencies.len();
    let pct = |p: f64| latencies[((p * total as f64).ceil() as usize).clamp(1, total) - 1];
    let mean = latencies.iter().sum::<Duration>() / total as u32;

    println!("requests:    {total} ({ok} ok, {shed} shed/503, {errors} errors)");
    println!("wall time:   {elapsed:.2?}");
    println!(
        "throughput:  {:.0} req/s",
        total as f64 / elapsed.as_secs_f64()
    );
    println!(
        "latency:     mean {mean:.2?}  p50 {:.2?}  p90 {:.2?}  p99 {:.2?}  max {:.2?}",
        pct(0.50),
        pct(0.90),
        pct(0.99),
        latencies[total - 1]
    );
    if errors > 0 {
        std::process::exit(1);
    }
}
