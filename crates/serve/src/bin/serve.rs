//! `serve` — boot the analytics server over a synthetic corpus.
//!
//! ```sh
//! cargo run --release -p cuisine-serve --bin serve -- \
//!     [--scale 0.1] [--seed 42] [--threads N] [--no-cache] \
//!     [--replicates 100] [--port 7878] [--queue 64] [--lru 128] \
//!     [--shards N] [--no-keepalive] [--self-check]
//! ```
//!
//! `--replicates` sets the Fig. 4 snapshot ensembles (the startup-cost
//! knob). `--threads` sizes the `/evolve` worker pool; `--shards` sets the
//! connection event-loop count (`0` = one per core); `--no-keepalive`
//! restores the one-request-per-connection model for A/B runs.
//! `--self-check` boots on an ephemeral port, drives the in-process client
//! through `/healthz`, an artifact endpoint, `POST /evolve` (twice —
//! asserting via `/metrics` that the repeat was a cache hit, not a second
//! computation), a pipelined keep-alive exchange, and one full admin
//! register → Ready → query → retire cycle (asserting the default corpus
//! bytes never change), verifies the served bytes against the snapshot
//! store, shuts down gracefully, and exits — the CI smoke test.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cuisine_bench::ExpOptions;
use cuisine_core::Experiment;
use cuisine_evolution::{EnsembleConfig, EvaluationConfig, ModelKind};
use cuisine_exec::FaultPlan;
use cuisine_serve::{
    client, AppState, BuildOptions, CorpusSpec, DeadlineConfig, RegistryConfig, Server,
    ServerConfig, SnapshotStore,
};

const USAGE: &str = "serve [--scale F] [--seed N] [--threads N] [--no-cache] \
[--miner fpgrowth|apriori|eclat|eclat-bitset|declat] [--mine-threads N] \
[--no-reorder] [--replicates N] [--port N] \
[--queue N] [--lru N] [--shards N] [--deadline-ms N] [--faults SPEC] \
[--no-keepalive] [--self-check]";

fn extra_value<T: std::str::FromStr>(
    extra: &[(String, String)],
    name: &str,
    default: T,
) -> T {
    match extra.iter().rev().find(|(k, _)| k == name) {
        None => default,
        Some((_, raw)) => raw.parse().unwrap_or_else(|_| {
            eprintln!("error: {name} has an invalid value {raw:?}");
            eprintln!("usage: {USAGE}");
            std::process::exit(2);
        }),
    }
}

fn main() {
    let (opts, extra) = ExpOptions::parse_with_or_exit(
        std::env::args(),
        &["--port", "--queue", "--lru", "--shards", "--deadline-ms", "--faults"],
        USAGE,
    );
    let self_check = opts.has_flag("--self-check");
    let no_keepalive = opts.has_flag("--no-keepalive");
    if let Some(unknown) = opts
        .flags
        .iter()
        .find(|f| !matches!(f.as_str(), "--self-check" | "--no-keepalive"))
    {
        eprintln!("error: unrecognized flag {unknown:?}");
        eprintln!("usage: {USAGE}");
        std::process::exit(2);
    }

    // `--shards 0` (the default) = one event loop per core.
    let shards = match extra_value(&extra, "--shards", 0usize) {
        0 => None,
        n => Some(n),
    };
    let deadline = DeadlineConfig {
        default_ms: extra_value(&extra, "--deadline-ms", DeadlineConfig::default().default_ms),
        ..Default::default()
    };
    let config = ServerConfig {
        port: if self_check { 0 } else { extra_value(&extra, "--port", 7878) },
        threads: opts.threads,
        queue_capacity: extra_value(&extra, "--queue", 64),
        lru_capacity: extra_value(&extra, "--lru", 128),
        shards,
        keep_alive: !no_keepalive,
        deadline,
        ..Default::default()
    };

    // Parse the startup fault plan before the expensive corpus build, so a
    // typo'd spec fails in milliseconds, not minutes.
    let fault_spec: String = extra_value(&extra, "--faults", String::new());
    let fault_plan = match fault_spec.trim() {
        "" => None,
        spec => match FaultPlan::parse(spec) {
            Ok(plan) => Some(plan),
            Err(reason) => {
                eprintln!("error: --faults: {reason}");
                eprintln!("usage: {USAGE}");
                std::process::exit(2);
            }
        },
    };

    eprintln!(
        "cuisine-serve: generating corpus (scale {}, seed {}) ...",
        opts.scale, opts.seed
    );
    let started = Instant::now();
    let experiment = Experiment::synthetic_with(&opts.synth_config(), opts.pipeline_config());
    eprintln!(
        "corpus ready: {} recipes in {:.2?}",
        experiment.corpus().len(),
        started.elapsed()
    );

    let fig4 = EvaluationConfig {
        ensemble: EnsembleConfig {
            replicates: opts.replicates.max(1),
            ..Default::default()
        },
        ..Default::default()
    };
    let version = format!(
        "synth-seed{}-scale{}-r{}-{}",
        opts.seed,
        opts.scale,
        fig4.ensemble.replicates,
        opts.miner.label()
    );
    eprintln!(
        "building snapshots ({} fig4 replicates/model/cuisine, {} miner) ...",
        fig4.ensemble.replicates,
        opts.miner.label()
    );
    let snap_started = Instant::now();
    let mut snapshots = SnapshotStore::build_timed(&experiment, version, &ModelKind::ALL, &fig4, &|| {
        snap_started.elapsed().as_millis().min(u128::from(u64::MAX)) as u64
    });
    let snap_elapsed = snap_started.elapsed();
    snapshots.set_build_wall_ms(snap_elapsed.as_millis().min(u128::from(u64::MAX)) as u64);
    eprintln!(
        "{} snapshots ({} KiB) in {:.2?} (mining stage {} ms)",
        snapshots.len(),
        snapshots.total_bytes() / 1024,
        snap_elapsed,
        snapshots.mining_wall_ms()
    );

    // Registry: the booted corpus is the default entry; registrations
    // inherit its spec fields and build with the same Fig. 4 options.
    // The injected clock reuses the startup `Instant` (the registry
    // itself reads no clocks — the deterministic-path lint budget).
    let default_spec = CorpusSpec {
        seed: opts.seed,
        scale: opts.scale,
        miner: opts.miner,
        cuisines: None,
    };
    let registry_config = RegistryConfig {
        default_spec: Some(default_spec),
        build: BuildOptions { models: ModelKind::ALL.to_vec(), fig4: fig4.clone() },
        clock: Arc::new(move || {
            started.elapsed().as_millis().min(u128::from(u64::MAX)) as u64
        }),
        build_threads: Some(1),
        ..Default::default()
    };
    let state = AppState::with_registry(
        Arc::new(experiment),
        Arc::new(snapshots),
        config.lru_capacity,
        registry_config,
    );
    if let Some(plan) = fault_plan {
        eprintln!("fault plan installed: {}", plan.spec());
        state.faults.install(plan);
    }
    let server = Server::start(state, config).unwrap_or_else(|e| {
        eprintln!("error: failed to bind server: {e}");
        std::process::exit(1);
    });
    println!("listening on http://{}", server.addr());

    if self_check {
        self_check_and_exit(server, !no_keepalive);
    }

    eprintln!("press Enter for graceful shutdown (or send SIGKILL)");
    let mut line = String::new();
    match std::io::stdin().read_line(&mut line) {
        Ok(0) | Err(_) => {
            // No interactive stdin (detached run): serve until killed.
            loop {
                std::thread::park();
            }
        }
        Ok(_) => {
            eprintln!("draining ...");
            server.shutdown();
            eprintln!("bye");
        }
    }
}

/// The CI smoke path: exercise the live server through the real client.
/// The pipelining/reuse assertions only make sense when keep-alive is on.
fn self_check_and_exit(server: Server, keep_alive: bool) -> ! {
    let addr = server.addr();
    let timeout = Duration::from_secs(10);
    let mut failures = 0u32;

    let mut check = |label: &str, ok: bool| {
        if ok {
            eprintln!("self-check: {label} ... ok");
        } else {
            eprintln!("self-check: {label} ... FAILED");
            failures += 1;
        }
    };

    let health = client::get(addr, "/healthz", timeout);
    check("/healthz is 200", health.as_ref().is_ok_and(|r| r.status == 200));

    let table1 = client::get(addr, "/table1", timeout);
    let expected = server.state().snapshots.get("/table1");
    check(
        "/table1 matches the snapshot bytes",
        matches!((&table1, &expected), (Ok(r), Some(snap)) if r.status == 200
            && r.body == **snap),
    );

    let body = r#"{"cuisine":"ITA","model":"NM","seed":1,"replicates":2}"#;
    let evolve_a = client::post_json(addr, "/evolve", body, timeout);
    let evolve_b = client::post_json(addr, "/evolve", body, timeout);
    check(
        "POST /evolve is deterministic",
        matches!((&evolve_a, &evolve_b), (Ok(a), Ok(b)) if a.status == 200 && a.body == b.body),
    );

    if keep_alive {
        // Pipelined keep-alive exchange on one persistent connection: both
        // responses must arrive in order with the exact snapshot bytes.
        let pipelined = client::Connection::open(addr, timeout).and_then(|mut conn| {
            conn.send("/healthz", None)?;
            conn.send("/table1", None)?;
            let first = conn.recv()?;
            let second = conn.recv()?;
            Ok((first, second))
        });
        check(
            "pipelined keep-alive requests answer in order",
            matches!((&pipelined, &expected), (Ok((h, t)), Some(snap)) if h.status == 200
                && t.status == 200 && t.body == **snap),
        );

        // The repeat /evolve above must have been a cache hit sharing the
        // first computation, and the pipelined pair a connection reuse.
        let counters = client::get(addr, "/metrics", timeout)
            .ok()
            .filter(|r| r.status == 200)
            .and_then(|r| String::from_utf8(r.body).ok())
            .and_then(|text| serde_json::from_str::<serde::Value>(&text).ok())
            .and_then(|doc| {
                let object = doc.as_object()?;
                Some((
                    object.get("evolve_computations")?.as_u64()?,
                    object.get("evolve_cache_hits")?.as_u64()?,
                    object.get("keepalive_reuses")?.as_u64()?,
                ))
            });
        check(
            "metrics confirm evolve caching and keep-alive reuse",
            matches!(counters, Some((computations, hits, reuses))
                if computations == 1 && hits >= 1 && reuses >= 1),
        );
    }

    // Admin cycle: register a single-cuisine corpus, wait for Ready,
    // query it, retire it — and assert the default corpus's bytes are
    // byte-identical before and after the whole cycle.
    let registered = client::post_json(addr, "/admin/corpora", r#"{"cuisines":["ITA"]}"#, timeout);
    check(
        "admin register answers 202",
        registered.as_ref().is_ok_and(|r| r.status == 202),
    );
    let key = registered
        .ok()
        .and_then(|r| String::from_utf8(r.body).ok())
        .and_then(|text| serde_json::from_str::<serde::Value>(&text).ok())
        .and_then(|doc| Some(doc.as_object()?.get("key")?.as_str()?.to_string()));
    let ready = key
        .as_ref()
        .is_some_and(|k| server.state().registry.wait_ready(k, Duration::from_secs(600)));
    check("registered corpus reaches Ready", ready);
    if let Some(key) = &key {
        let scoped = client::get(addr, &format!("/table1?corpus={key}"), timeout);
        check(
            "corpus-scoped /table1 answers 200",
            scoped.is_ok_and(|r| r.status == 200),
        );
        let listing = client::get(addr, "/admin/corpora", timeout);
        check(
            "admin listing shows the corpus as ready",
            listing.is_ok_and(|r| {
                r.status == 200 && String::from_utf8_lossy(&r.body).contains(key.as_str())
            }),
        );
        let retired = client::delete(addr, &format!("/admin/corpora/{key}"), timeout);
        check("retire answers 200", retired.is_ok_and(|r| r.status == 200));
        let gone = client::get(addr, &format!("/table1?corpus={key}"), timeout);
        check("retired corpus answers 404", gone.is_ok_and(|r| r.status == 404));
    }
    check(
        "default corpus cannot be retired",
        client::delete(addr, "/admin/corpora/default", timeout)
            .is_ok_and(|r| r.status == 409),
    );
    let table1_after = client::get(addr, "/table1", timeout);
    check(
        "default corpus bytes unchanged after the admin cycle",
        matches!((&table1_after, &expected), (Ok(r), Some(snap)) if r.status == 200
            && r.body == **snap),
    );

    let missing = client::get(addr, "/no-such-endpoint", timeout);
    check("unknown path is 404", missing.is_ok_and(|r| r.status == 404));

    server.shutdown();
    eprintln!("self-check: graceful shutdown ... ok");
    if failures == 0 {
        println!("self-check passed");
        std::process::exit(0);
    }
    eprintln!("self-check: {failures} failure(s)");
    std::process::exit(1);
}
