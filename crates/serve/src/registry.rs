//! Multi-corpus snapshot registry: background builds, atomic hot-swap,
//! and the zero-downtime admin API.
//!
//! The serving layer boots with one corpus — the `(seed, scale, miner)`
//! configuration the binary was launched with — but a fleet answering
//! heterogeneous per-corpus queries needs many variants live at once
//! (ROADMAP item 3). [`CorpusRegistry`] maps a canonical corpus key
//! ([`CorpusSpec::canonical_key`]) to an epoch-versioned entry holding
//! `Arc<Experiment>` + `Arc<SnapshotStore>`, and moves entries through
//! three states:
//!
//! * **Building** — registered, snapshot build queued or running on the
//!   registry's own [`WorkerPool`]; reads answer `409` with a
//!   `retry_after_ms` hint.
//! * **Ready** — an immutable `(experiment, snapshots)` pair is installed
//!   at some epoch; reads clone the `Arc`s and never block on builds.
//! * **Retiring** — retired via the admin API; the entry stops resolving
//!   (future reads `404`) while in-flight requests finish on the `Arc`s
//!   they already cloned.
//!
//! **Swap safety.** A build never mutates a served snapshot: it
//! constructs a fresh `CorpusData` off to the side and installs it by
//! swapping the `Arc`s under the registry lock (epoch +1). Requests
//! resolve a [`CorpusHandle`] — their own `Arc` clones stamped with the
//! epoch — exactly once, so a request started on epoch *n* serves epoch
//! *n* bytes even if epoch *n+1* lands mid-request. Caches key on
//! `key@epoch` (see [`CorpusHandle::cache_scope`]), so a hot-swap can
//! never serve a stale body; and because the pipeline is deterministic in
//! the spec — and registry snapshot versions are the *key*, which is
//! stable across rebuilds — re-registering the same spec produces
//! byte-identical bodies at every epoch.
//!
//! **Coalescing.** Concurrent registrations of one key attach to the
//! pending build's [`Flight`] instead of queueing duplicates; the
//! `registry_coalesced_registrations` counter proves it in `/metrics`.
//!
//! Like the rest of the serving library the registry reads no clocks
//! itself: wall-time (build durations, retry hints) comes through an
//! injected [`Clock`] that binaries wire to a monotonic timer and tests
//! leave at the zero default.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cuisine_core::{Experiment, PipelineConfig};
use cuisine_data::{Corpus, CuisineId};
use cuisine_evolution::{EnsembleConfig, EvaluationConfig, ModelKind};
use cuisine_exec::lockorder::{self, OrderedMutex};
use cuisine_exec::{panic_message, Faults, Flight, PoolFull, WorkerPool};
use cuisine_lexicon::Lexicon;
use cuisine_mining::Miner;
use cuisine_synth::{generate_corpus, SynthConfig};
use serde::{Map, Value};

use crate::http::{HttpError, Response};
use crate::metrics::RegistryStats;
use crate::snapshot::SnapshotStore;

/// Milliseconds-since-origin clock injected by the embedding. The
/// library default always reads 0 (deterministic tests, no `Instant` on
/// the lint budget); binaries install a monotonic timer.
pub type Clock = Arc<dyn Fn() -> u64 + Send + Sync>;

fn null_clock() -> Clock {
    Arc::new(|| 0)
}

/// Queued registrations a registry accepts before shedding with `503`.
/// Builds are rare, heavyweight admin operations; a deep queue would only
/// hide a misbehaving client.
pub const BUILD_QUEUE: usize = 8;

/// Floor for the `retry_after_ms` hint on `409` responses.
const MIN_RETRY_MS: u64 = 100;

/// Fallback build estimate when no build has ever been timed.
const DEFAULT_BUILD_ESTIMATE_MS: u64 = 1_000;

/// Everything that identifies a corpus variant: the synthesis seed and
/// scale, the mining kernel, and an optional cuisine subset.
///
/// The pipeline is deterministic in this spec, so the spec *is* the
/// corpus identity — two registrations with equal canonical keys are
/// guaranteed byte-identical artifacts, which is what licenses
/// coalescing them onto one build.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusSpec {
    /// Synthetic-corpus master seed.
    pub seed: u64,
    /// Fraction of the paper's recipe counts to generate.
    pub scale: f64,
    /// Mining kernel for snapshots and `/evolve` on this corpus.
    pub miner: Miner,
    /// Restrict the corpus to these cuisines (`None` = all 25). Sorted
    /// and deduplicated by [`CorpusSpec::from_json`].
    pub cuisines: Option<Vec<CuisineId>>,
}

impl CorpusSpec {
    /// Canonical registry key, e.g. `seed11-scale0.02-fpgrowth` or
    /// `seed11-scale0.02-eclat-FRA_ITA`. The charset (`[A-Za-z0-9._-]`)
    /// survives URL query encoding and shell quoting unchanged, so the
    /// key doubles as the `?corpus=` parameter and the admin path
    /// segment.
    pub fn canonical_key(&self) -> String {
        let mut key = format!("seed{}-scale{}-{}", self.seed, self.scale, self.miner.label());
        if let Some(subset) = &self.cuisines {
            let codes: Vec<&str> = subset.iter().map(|id| id.code()).collect();
            key.push('-');
            key.push_str(&codes.join("_"));
        }
        key
    }

    /// Parse an admin registration body.
    ///
    /// Shape: `{"seed": 11, "scale": 0.02, "miner": "eclat",
    /// "cuisines": ["ITA", "FRA"]}`. Omitted fields inherit from
    /// `defaults` (the default corpus's spec) when provided; without
    /// defaults, `seed` and `scale` are required. Unknown fields are
    /// `422` so typos cannot silently register the wrong corpus;
    /// malformed JSON is `400`.
    pub fn from_json(body: &[u8], defaults: Option<&CorpusSpec>) -> Result<Self, HttpError> {
        let text = std::str::from_utf8(body)
            .map_err(|_| HttpError::bad_request("body is not UTF-8"))?;
        let value: Value = serde_json::from_str(text)
            .map_err(|e| HttpError::bad_request(format!("invalid JSON body: {e}")))?;
        let object = value
            .as_object()
            .ok_or_else(|| HttpError::bad_request("body must be a JSON object"))?;

        for (key, _) in object.iter() {
            if !matches!(key, "seed" | "scale" | "miner" | "cuisines") {
                return Err(HttpError::new(422, format!("unknown field {key:?}")));
            }
        }

        let seed = match object.get("seed") {
            Some(v) => v
                .as_u64()
                .ok_or_else(|| HttpError::new(422, "field \"seed\" must be a non-negative integer"))?,
            None => match defaults {
                Some(spec) => spec.seed,
                None => return Err(HttpError::new(422, "field \"seed\" (integer) is required")),
            },
        };

        let scale = match object.get("scale") {
            Some(v) => v
                .as_f64()
                .ok_or_else(|| HttpError::new(422, "field \"scale\" must be a number"))?,
            None => match defaults {
                Some(spec) => spec.scale,
                None => return Err(HttpError::new(422, "field \"scale\" (number) is required")),
            },
        };
        if !scale.is_finite() || scale <= 0.0 || scale > 1.0 {
            return Err(HttpError::new(422, format!("\"scale\" must be in (0, 1], got {scale}")));
        }

        let miner = match object.get("miner") {
            Some(v) => {
                let label = v
                    .as_str()
                    .ok_or_else(|| HttpError::new(422, "field \"miner\" must be a string"))?;
                label.parse::<Miner>().map_err(|_| {
                    HttpError::new(422, format!("unknown miner {label:?}"))
                })?
            }
            None => defaults.map(|spec| spec.miner).unwrap_or_default(),
        };

        let cuisines = match object.get("cuisines") {
            None => defaults.and_then(|spec| spec.cuisines.clone()),
            Some(Value::Null) => None,
            Some(v) => {
                let items = v.as_array().ok_or_else(|| {
                    HttpError::new(422, "field \"cuisines\" must be an array of cuisine codes")
                })?;
                let mut ids = Vec::with_capacity(items.len());
                for item in items {
                    let label = item.as_str().ok_or_else(|| {
                        HttpError::new(422, "\"cuisines\" entries must be strings")
                    })?;
                    let id: CuisineId = label.parse().map_err(|_| {
                        HttpError::new(422, format!("unknown cuisine {label:?}"))
                    })?;
                    ids.push(id);
                }
                ids.sort_by_key(|id| id.code());
                ids.dedup();
                if ids.is_empty() {
                    return Err(HttpError::new(422, "\"cuisines\" must not be empty"));
                }
                Some(ids)
            }
        };

        Ok(CorpusSpec { seed, scale, miner, cuisines })
    }
}

/// What a registry build snapshots: the Fig. 4 model set and evaluation
/// configuration (the dominant build cost).
#[derive(Debug, Clone)]
pub struct BuildOptions {
    /// Evolution models evaluated into `/fig4`.
    pub models: Vec<ModelKind>,
    /// Fig. 4 evaluation configuration (replicates, ensemble seed).
    pub fig4: EvaluationConfig,
}

impl BuildOptions {
    /// The cheapest useful build: the null model with 2 replicates —
    /// what tests and self-checks use so registrations finish in
    /// seconds, not minutes.
    pub fn minimal() -> Self {
        BuildOptions {
            models: vec![ModelKind::Null],
            fig4: EvaluationConfig {
                ensemble: EnsembleConfig { replicates: 2, seed: 7, threads: None },
                ..Default::default()
            },
        }
    }
}

/// Registry construction knobs.
pub struct RegistryConfig {
    /// Spec of the corpus the server booted with. `None` registers the
    /// startup snapshots under the literal key `"default"` (they cannot
    /// be rebuilt without a spec); `Some` keys them canonically and lets
    /// omitted registration fields inherit from it.
    pub default_spec: Option<CorpusSpec>,
    /// What registered builds snapshot.
    pub build: BuildOptions,
    /// Wall-time source for build durations and retry hints.
    pub clock: Clock,
    /// Builder pool size (`None` = one per core). Builds saturate the
    /// pipeline internally, so the default single builder is usually
    /// right.
    pub build_threads: Option<usize>,
    /// Fault-injection handle consulted at `registry.build`,
    /// `snapshot.serialize`, and the builder pool's `pool.dispatch`
    /// points. [`AppState`](crate::router::AppState) adopts this same
    /// handle so one plan governs the whole stack; the default handle has
    /// no plan installed and costs one relaxed load per hook.
    pub faults: Arc<Faults>,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            default_spec: None,
            build: BuildOptions::minimal(),
            clock: null_clock(),
            build_threads: Some(1),
            faults: Arc::new(Faults::new()),
        }
    }
}

/// The immutable payload of a Ready corpus: everything a request needs,
/// shared by `Arc` so installs are pointer swaps.
#[derive(Clone)]
pub struct CorpusData {
    /// Corpus, lexicon, pipeline config, and shared transaction cache.
    pub experiment: Arc<Experiment>,
    /// Precomputed artifact bodies (version = the corpus key).
    pub snapshots: Arc<SnapshotStore>,
}

/// One registry slot. `generation` counts registrations and gates
/// installs: a build finishing after its key was retired or re-registered
/// (different generation) discards its result instead of resurrecting a
/// dead corpus. `epoch` counts successful installs and scopes caches.
struct CorpusEntry {
    spec: Option<CorpusSpec>,
    generation: u64,
    epoch: u64,
    data: Option<CorpusData>,
    retired: bool,
    build_ms: u64,
    build_started_ms: u64,
    hits: Arc<AtomicU64>,
    pending: Option<Arc<Flight<()>>>,
    /// Reason the most recent build failed. With `data` installed this
    /// marks the entry *degraded* (stale-while-revalidate: the last-good
    /// epoch keeps serving); with no data it marks the entry *failed*
    /// (reads answer a named `500`). Cleared by the next successful build.
    last_error: Option<String>,
}

impl CorpusEntry {
    fn empty() -> Self {
        CorpusEntry {
            spec: None,
            generation: 0,
            epoch: 0,
            data: None,
            retired: false,
            build_ms: 0,
            build_started_ms: 0,
            hits: Arc::new(AtomicU64::new(0)),
            pending: None,
            last_error: None,
        }
    }

    fn state(&self) -> &'static str {
        if self.retired {
            "retiring"
        } else if self.data.is_some() {
            "ready"
        } else if self.pending.is_some() {
            "building"
        } else if self.last_error.is_some() {
            "failed"
        } else {
            "building"
        }
    }

    fn admin_row(&self, key: &str) -> Value {
        let mut row = Map::new();
        // "key" and "state" lead the row (the map is insertion-ordered)
        // so shell smoke tests can grep adjacent fields.
        row.insert("key", Value::String(key.to_string()));
        row.insert("state", Value::String(self.state().into()));
        row.insert("epoch", Value::U64(self.epoch));
        // Kernel provenance: the installed snapshots' label when Ready
        // (ground truth), else the registered spec's, else null.
        let miner = self
            .data
            .as_ref()
            .map(|data| data.snapshots.miner())
            .or_else(|| self.spec.as_ref().map(|spec| spec.miner.label()));
        row.insert("miner", miner.map_or(Value::Null, |label| Value::String(label.into())));
        row.insert("build_ms", Value::U64(self.build_ms));
        row.insert(
            "mining_ms",
            Value::U64(self.data.as_ref().map_or(0, |data| data.snapshots.mining_wall_ms())),
        );
        row.insert("hits", Value::U64(self.hits.load(Ordering::Relaxed)));
        row.insert("rebuilding", Value::Bool(self.pending.is_some() && self.data.is_some()));
        row.insert("degraded", Value::Bool(self.data.is_some() && self.last_error.is_some()));
        row.insert(
            "error",
            match &self.last_error {
                Some(reason) => Value::String(reason.clone()),
                None => Value::Null,
            },
        );
        Value::Object(row)
    }
}

/// Why a corpus could not be resolved for a read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CorpusError {
    /// The key was never registered (or has been retired).
    NotFound(String),
    /// The key is registered but its first build has not finished.
    Building {
        /// The canonical key that is building.
        key: String,
        /// Suggested client back-off, estimated from measured build
        /// times minus elapsed build time.
        retry_after_ms: u64,
    },
    /// The key's first build failed and nothing has ever been installed;
    /// there is no last-good epoch to degrade to.
    BuildFailed {
        /// The canonical key whose build failed.
        key: String,
        /// The captured build-failure reason (panic message or injected
        /// fault description).
        reason: String,
    },
}

impl CorpusError {
    /// The error-contract response: `404` JSON for unknown keys, `409`
    /// JSON with a `retry_after_ms` hint while building, `500` JSON
    /// naming the key and failure reason when a first build failed.
    pub fn to_response(&self) -> Response {
        match self {
            CorpusError::NotFound(key) => {
                Response::error(404, &format!("no corpus {key:?} is registered"))
            }
            CorpusError::Building { key, retry_after_ms } => {
                let mut doc = Map::new();
                doc.insert("error", Value::String(format!("corpus {key:?} is still building")));
                doc.insert("status", Value::U64(409));
                doc.insert("retry_after_ms", Value::U64(*retry_after_ms));
                Response::json(
                    409,
                    serde_json::to_string(&Value::Object(doc)).unwrap_or_default(),
                )
            }
            CorpusError::BuildFailed { key, reason } => {
                Response::error(500, &format!("corpus {key:?} build failed: {reason}"))
            }
        }
    }
}

/// A resolved read lease on one corpus at one epoch: `Arc` clones of the
/// served data plus the epoch stamp caches key on. Requests resolve one
/// handle up front and use it throughout, so a concurrent hot-swap can
/// never change the bytes mid-request.
#[derive(Clone)]
pub struct CorpusHandle {
    key: String,
    epoch: u64,
    /// The corpus's experiment (for `/evolve` computations).
    pub experiment: Arc<Experiment>,
    /// The corpus's snapshot bodies.
    pub snapshots: Arc<SnapshotStore>,
    hits: Arc<AtomicU64>,
}

impl std::fmt::Debug for CorpusHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CorpusHandle")
            .field("key", &self.key)
            .field("epoch", &self.epoch)
            .finish_non_exhaustive()
    }
}

impl CorpusHandle {
    /// The canonical corpus key this handle resolved.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// The install epoch this handle is pinned to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Cache-key prefix: `key@epoch`. A hot-swap bumps the epoch, so
    /// entries cached under the old scope can never answer for the new
    /// snapshots (and vice versa).
    pub fn cache_scope(&self) -> String {
        format!("{}@{}", self.key, self.epoch)
    }

    /// Count one request served through this corpus.
    pub fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }
}

struct RegistryShared {
    entries: OrderedMutex<BTreeMap<String, CorpusEntry>>,
    default_key: String,
    default_spec: Option<CorpusSpec>,
    base_pipeline: PipelineConfig,
    build: BuildOptions,
    clock: Clock,
    faults: Arc<Faults>,
    builds: AtomicU64,
    swaps: AtomicU64,
    coalesced: AtomicU64,
    build_failures: AtomicU64,
}

/// One queued snapshot build: the spec, the generation that must still be
/// current at install time, and the flight waiters poll.
struct BuildJob {
    key: String,
    spec: CorpusSpec,
    generation: u64,
    flight: Arc<Flight<()>>,
}

/// The registry: a keyed map of corpus entries plus the worker pool that
/// builds them. See the module docs for states and swap safety.
pub struct CorpusRegistry {
    shared: Arc<RegistryShared>,
    pool: WorkerPool<BuildJob>,
}

impl CorpusRegistry {
    /// Build a registry whose default corpus adopts the already-built
    /// startup experiment + snapshots (at epoch 1, `build_ms` taken from
    /// the store's recorded build wall-clock).
    pub fn new(
        experiment: Arc<Experiment>,
        snapshots: Arc<SnapshotStore>,
        config: RegistryConfig,
    ) -> Self {
        let default_key = config
            .default_spec
            .as_ref()
            .map(CorpusSpec::canonical_key)
            .unwrap_or_else(|| "default".to_string());
        let base_pipeline = *experiment.config();
        let build_ms = snapshots.info().build_wall_ms;
        let mut entries = BTreeMap::new();
        entries.insert(
            default_key.clone(),
            CorpusEntry {
                spec: config.default_spec.clone(),
                generation: 1,
                epoch: 1,
                data: Some(CorpusData { experiment, snapshots }),
                retired: false,
                build_ms,
                build_started_ms: 0,
                hits: Arc::new(AtomicU64::new(0)),
                pending: None,
                last_error: None,
            },
        );
        let shared = Arc::new(RegistryShared {
            entries: OrderedMutex::new(lockorder::REGISTRY_ENTRIES, entries),
            default_key,
            default_spec: config.default_spec,
            base_pipeline,
            build: config.build,
            clock: config.clock,
            faults: Arc::clone(&config.faults),
            builds: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            build_failures: AtomicU64::new(0),
        });
        let worker_shared = Arc::clone(&shared);
        let pool = WorkerPool::with_faults(
            config.build_threads,
            BUILD_QUEUE,
            Some(config.faults),
            move |job: BuildJob| {
                run_build(&worker_shared, job);
            },
        );
        CorpusRegistry { shared, pool }
    }

    /// The fault-injection handle this registry consults (shared with the
    /// rest of the serve stack via [`AppState`](crate::router::AppState)).
    pub fn faults(&self) -> Arc<Faults> {
        Arc::clone(&self.shared.faults)
    }

    /// Builder-pool panics contained by the per-job `catch_unwind`
    /// (injected `pool.dispatch` faults; real build panics are caught one
    /// level deeper and recorded as build failures).
    pub fn worker_panics(&self) -> u64 {
        self.pool.worker_panics()
    }

    /// The default corpus's canonical key (aliased by `?corpus=default`
    /// and corpus-less requests).
    pub fn default_key(&self) -> &str {
        &self.shared.default_key
    }

    /// The default corpus's spec, if the embedding provided one —
    /// registration bodies inherit omitted fields from it.
    pub fn default_spec(&self) -> Option<CorpusSpec> {
        self.shared.default_spec.clone()
    }

    /// Number of registered (non-retired) corpora.
    pub fn len(&self) -> usize {
        self.shared.entries.lock().values().filter(|e| !e.retired).count()
    }

    /// True when no corpus is live (never the case: the default corpus
    /// cannot be retired).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resolve a `?corpus=` parameter (or its absence) to a read lease.
    ///
    /// `None` and `"default"` alias the default corpus. Serving
    /// continues on the installed epoch while a rebuild is pending —
    /// `Building` is only surfaced before the *first* install.
    pub fn resolve(&self, key: Option<&str>) -> Result<CorpusHandle, CorpusError> {
        let shared = &self.shared;
        let entries = shared.entries.lock();
        let key = match key {
            None | Some("default") => shared.default_key.as_str(),
            Some(explicit) => explicit,
        };
        let entry = match entries.get(key) {
            Some(entry) => entry,
            None => return Err(CorpusError::NotFound(key.to_string())),
        };
        match &entry.data {
            Some(data) if !entry.retired => Ok(CorpusHandle {
                key: key.to_string(),
                epoch: entry.epoch,
                experiment: Arc::clone(&data.experiment),
                snapshots: Arc::clone(&data.snapshots),
                hits: Arc::clone(&entry.hits),
            }),
            _ if entry.pending.is_some() && !entry.retired => Err(CorpusError::Building {
                key: key.to_string(),
                retry_after_ms: retry_hint(shared, &entries, entry),
            }),
            _ if entry.last_error.is_some() && !entry.retired => Err(CorpusError::BuildFailed {
                key: key.to_string(),
                reason: entry.last_error.clone().unwrap_or_default(),
            }),
            _ => Err(CorpusError::NotFound(key.to_string())),
        }
    }

    /// Register (or hot-swap) a corpus: `202` with the entry's state
    /// when a build was queued or coalesced onto a pending one, `503`
    /// when the build queue is full.
    ///
    /// Re-registering a Ready key queues a fresh build whose install
    /// bumps the epoch — that *is* the zero-downtime swap: reads keep
    /// resolving the old epoch until the new one lands atomically.
    pub fn register(&self, spec: CorpusSpec) -> Response {
        let key = spec.canonical_key();
        let shared = &self.shared;
        let (flight, generation) = {
            let mut entries = shared.entries.lock();
            let entry = entries.entry(key.clone()).or_insert_with(CorpusEntry::empty);
            if entry.pending.is_some() {
                shared.coalesced.fetch_add(1, Ordering::Relaxed);
                return accepted(&key, entry, true);
            }
            entry.retired = false;
            entry.spec = Some(spec.clone());
            entry.generation += 1;
            entry.build_started_ms = (shared.clock)();
            let flight = Arc::new(Flight::new());
            entry.pending = Some(Arc::clone(&flight));
            (flight, entry.generation)
        };
        let job = BuildJob { key: key.clone(), spec, generation, flight };
        match self.pool.try_execute(job) {
            Ok(()) => {
                shared.builds.fetch_add(1, Ordering::Relaxed);
                let entries = shared.entries.lock();
                match entries.get(&key) {
                    Some(entry) if entry.data.is_none() && entry.pending.is_none() => {
                        // The build already ran and failed before we
                        // re-locked; name the key and the captured reason.
                        let reason = entry.last_error.clone().unwrap_or_default();
                        CorpusError::BuildFailed { key: key.clone(), reason }.to_response()
                    }
                    Some(entry) => accepted(&key, entry, false),
                    // Retired concurrently: the entry is gone.
                    None => Response::error(
                        500,
                        &format!("corpus {key:?} build failed: entry vanished before install"),
                    ),
                }
            }
            Err(PoolFull(job)) => {
                let mut entries = shared.entries.lock();
                let mut drop_key = false;
                if let Some(entry) = entries.get_mut(&job.key) {
                    if entry.generation == job.generation {
                        entry.pending = None;
                        drop_key = entry.data.is_none() && entry.last_error.is_none();
                    }
                }
                if drop_key {
                    entries.remove(&job.key);
                }
                drop(entries);
                job.flight.complete(());
                Response::error(
                    503,
                    &format!(
                        "registry build queue is full ({BUILD_QUEUE} pending); \
                         retry registration of corpus {key:?} later"
                    ),
                )
            }
        }
    }

    /// Retire a corpus: future resolves `404`, in-flight requests finish
    /// on their leased `Arc`s, a pending build's result is discarded.
    /// `409` on the default corpus, `404` on unknown keys, idempotent
    /// otherwise.
    pub fn retire(&self, key: &str) -> Response {
        let shared = &self.shared;
        if key == shared.default_key || key == "default" {
            return Response::error(409, "cannot retire the default corpus");
        }
        let mut entries = shared.entries.lock();
        match entries.get_mut(key) {
            None => Response::error(404, &format!("no corpus {key:?} is registered")),
            Some(entry) => {
                entry.retired = true;
                entry.data = None;
                entry.pending = None;
                entry.generation += 1;
                let mut doc = Map::new();
                doc.insert("key", Value::String(key.to_string()));
                doc.insert("state", Value::String("retiring".into()));
                doc.insert("epoch", Value::U64(entry.epoch));
                Response::json(
                    200,
                    serde_json::to_string(&Value::Object(doc)).unwrap_or_default(),
                )
            }
        }
    }

    /// The `GET /admin/corpora` document: the default key plus one row
    /// per entry (key, state, epoch, miner, build_ms, mining_ms, hits,
    /// rebuilding).
    pub fn admin_list(&self) -> Response {
        let shared = &self.shared;
        let entries = shared.entries.lock();
        let mut doc = Map::new();
        doc.insert("default", Value::String(shared.default_key.clone()));
        doc.insert("corpora", corpus_rows(&entries));
        Response::json(200, serde_json::to_string(&Value::Object(doc)).unwrap_or_default())
    }

    /// Registry counters and per-corpus rows for `/metrics`.
    pub fn stats(&self) -> RegistryStats {
        let shared = &self.shared;
        let entries = shared.entries.lock();
        RegistryStats {
            builds: shared.builds.load(Ordering::Relaxed),
            swaps: shared.swaps.load(Ordering::Relaxed),
            coalesced_registrations: shared.coalesced.load(Ordering::Relaxed),
            build_failures: shared.build_failures.load(Ordering::Relaxed),
            corpora: corpus_rows(&entries),
        }
    }

    /// Block until `key` is Ready with no build pending (true), or it is
    /// unknown/retired/failed (false). Each pending build generation is
    /// waited on for up to `timeout`; the loop is iteration-bounded, not
    /// clock-bounded, to stay off the deterministic-path lint budget.
    pub fn wait_ready(&self, key: &str, timeout: Duration) -> bool {
        for _ in 0..64 {
            let pending = {
                let entries = self.shared.entries.lock();
                match entries.get(key) {
                    None => return false,
                    Some(entry) if entry.retired => return false,
                    Some(entry) => match (&entry.data, &entry.pending) {
                        (Some(_), None) => return true,
                        (_, Some(flight)) => Arc::clone(flight),
                        (None, None) => return false,
                    },
                }
            };
            if pending.wait_timeout(timeout).is_none() {
                return false;
            }
        }
        let entries = self.shared.entries.lock();
        entries
            .get(key)
            .is_some_and(|entry| entry.data.is_some() && entry.pending.is_none())
    }
}

/// The `202 Accepted` registration body.
fn accepted(key: &str, entry: &CorpusEntry, coalesced: bool) -> Response {
    let mut doc = Map::new();
    doc.insert("key", Value::String(key.to_string()));
    doc.insert("state", Value::String(entry.state().into()));
    doc.insert("epoch", Value::U64(entry.epoch));
    doc.insert("coalesced", Value::Bool(coalesced));
    Response::json(202, serde_json::to_string(&Value::Object(doc)).unwrap_or_default())
}

fn corpus_rows(entries: &BTreeMap<String, CorpusEntry>) -> Value {
    Value::Array(entries.iter().map(|(key, entry)| entry.admin_row(key)).collect())
}

/// Estimate how long a Building key still needs: its own last measured
/// build, else the default corpus's, else a fixed fallback — minus the
/// time already spent building, floored at [`MIN_RETRY_MS`].
fn retry_hint(
    shared: &RegistryShared,
    entries: &BTreeMap<String, CorpusEntry>,
    entry: &CorpusEntry,
) -> u64 {
    let estimate = if entry.build_ms > 0 {
        entry.build_ms
    } else {
        entries
            .get(&shared.default_key)
            .map(|default| default.build_ms)
            .filter(|&ms| ms > 0)
            .unwrap_or(DEFAULT_BUILD_ESTIMATE_MS)
    };
    let elapsed = (shared.clock)().saturating_sub(entry.build_started_ms);
    estimate.saturating_sub(elapsed).max(MIN_RETRY_MS)
}

/// Worker-side build: synthesize, subset, run the pipeline, snapshot —
/// then install under the lock iff the registration is still current.
fn run_build(shared: &Arc<RegistryShared>, job: BuildJob) {
    // The pool's worker loop swallows job panics to keep the builder
    // alive; catch here so the entry and flight always resolve, and so
    // the panic payload becomes the recorded failure reason.
    let built = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if let Some(action) = shared.faults.fire("registry.build") {
            action.apply("registry.build")?;
        }
        let started = (shared.clock)();
        let mut data =
            build_corpus_data(&job.spec, &job.key, shared.base_pipeline, &shared.build, shared);
        data.0.set_build_wall_ms((shared.clock)().saturating_sub(started));
        Ok(data)
    }))
    .map_err(|payload| format!("build panicked: {}", panic_message(payload.as_ref())))
    .and_then(|result: Result<_, String>| result);
    let mut entries = shared.entries.lock();
    if let Some(entry) = entries.get_mut(&job.key) {
        if entry.generation == job.generation {
            entry.pending = None;
            match built {
                Ok((snapshots, experiment)) => {
                    let swapping = entry.data.is_some();
                    entry.build_ms = snapshots.info().build_wall_ms;
                    entry.epoch += 1;
                    entry.data = Some(CorpusData {
                        experiment: Arc::new(experiment),
                        snapshots: Arc::new(snapshots),
                    });
                    entry.last_error = None;
                    if swapping {
                        shared.swaps.fetch_add(1, Ordering::Relaxed);
                    }
                }
                // Last-good degradation: a failed *rebuild* keeps serving
                // the installed epoch (the entry is merely degraded); a
                // failed *first* build keeps the entry in a Failed state
                // so reads answer a named 500 instead of Building forever.
                Err(reason) => {
                    shared.build_failures.fetch_add(1, Ordering::Relaxed);
                    entry.last_error = Some(reason);
                }
            }
        }
    }
    drop(entries);
    job.flight.complete(());
}

/// Construct the spec's corpus and run the full pipeline. The snapshot
/// version is the *key* — stable across rebuilds — so every body,
/// including the version-bearing index document, is byte-identical
/// across epochs of one spec.
fn build_corpus_data(
    spec: &CorpusSpec,
    key: &str,
    base: PipelineConfig,
    options: &BuildOptions,
    shared: &RegistryShared,
) -> (SnapshotStore, Experiment) {
    let synth = SynthConfig { seed: spec.seed, scale: spec.scale, ..Default::default() };
    let full = generate_corpus(&synth, Lexicon::standard());
    let corpus = match &spec.cuisines {
        None => full,
        Some(subset) => Corpus::new(
            full.recipes()
                .iter()
                .filter(|recipe| subset.contains(&recipe.cuisine))
                .cloned()
                .collect(),
        ),
    };
    let config = PipelineConfig { miner: spec.miner, ..base };
    let experiment = Experiment::with_config(corpus, config);
    if let Some(action) = shared.faults.fire("snapshot.serialize") {
        // Propagated as a build failure by `run_build`'s catch/apply; the
        // delay variant just stretches the serialize phase.
        if let Err(reason) = action.apply("snapshot.serialize") {
            // `apply` panics for Panic and errs for Fail/ShortWrite; turn
            // the error into the panic `run_build` already contains.
            std::panic::panic_any(reason);
        }
    }
    let snapshots = SnapshotStore::build_timed(
        &experiment,
        key.to_string(),
        &options.models,
        &options.fig4,
        &|| (shared.clock)(),
    );
    (snapshots, experiment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fixture, fixture_spec};

    fn registry() -> CorpusRegistry {
        let (experiment, store) = fixture();
        CorpusRegistry::new(
            Arc::clone(experiment),
            Arc::clone(store),
            RegistryConfig { default_spec: Some(fixture_spec()), ..Default::default() },
        )
    }

    fn body_json(response: &Response) -> Value {
        serde_json::from_str(std::str::from_utf8(&response.body).unwrap()).unwrap()
    }

    #[test]
    fn canonical_keys_are_stable_and_subset_sorted() {
        let spec = fixture_spec();
        assert_eq!(spec.canonical_key(), "seed11-scale0.02-fpgrowth");
        let subset = CorpusSpec {
            cuisines: Some(vec!["ITA".parse().unwrap(), "FRA".parse().unwrap()]),
            miner: Miner::Eclat,
            ..fixture_spec()
        };
        // from_json sorts; constructing by hand must match the parsed key.
        let parsed = CorpusSpec::from_json(
            br#"{"seed":11,"scale":0.02,"miner":"eclat","cuisines":["ITA","FRA"]}"#,
            None,
        )
        .unwrap();
        assert_eq!(parsed.canonical_key(), "seed11-scale0.02-eclat-FRA_ITA");
        assert_eq!(parsed.cuisines, subset.cuisines.map(|mut c| {
            c.sort_by_key(|id| id.code());
            c
        }));
    }

    #[test]
    fn from_json_inherits_defaults_and_rejects_bad_fields() {
        let defaults = fixture_spec();
        let inherited = CorpusSpec::from_json(br#"{"miner":"apriori"}"#, Some(&defaults)).unwrap();
        assert_eq!(inherited.seed, 11);
        assert_eq!(inherited.scale, 0.02);
        assert_eq!(inherited.miner, Miner::Apriori);

        assert_eq!(CorpusSpec::from_json(b"not json", None).unwrap_err().status, 400);
        let cases: &[&[u8]] = &[
            br#"{"scale":0.02}"#,                                // missing seed, no defaults
            br#"{"seed":1}"#,                                    // missing scale, no defaults
            br#"{"seed":1,"scale":0}"#,                          // scale out of range
            br#"{"seed":1,"scale":2.0}"#,                        // scale out of range
            br#"{"seed":1,"scale":0.02,"miner":"gpt"}"#,         // unknown miner
            br#"{"seed":1,"scale":0.02,"cuisines":[]}"#,         // empty subset
            br#"{"seed":1,"scale":0.02,"cuisines":["Xx"]}"#,     // unknown cuisine
            br#"{"seed":1,"scale":0.02,"surprise":1}"#,          // unknown field
        ];
        for body in cases {
            let err = CorpusSpec::from_json(body, None).unwrap_err();
            assert_eq!(err.status, 422, "body={:?}", String::from_utf8_lossy(body));
        }
    }

    #[test]
    fn default_corpus_resolves_and_cannot_be_retired() {
        let registry = registry();
        let by_none = registry.resolve(None).unwrap();
        let by_alias = registry.resolve(Some("default")).unwrap();
        let by_key = registry.resolve(Some("seed11-scale0.02-fpgrowth")).unwrap();
        assert_eq!(by_none.key(), "seed11-scale0.02-fpgrowth");
        assert_eq!(by_none.epoch(), 1);
        assert_eq!(by_none.cache_scope(), by_alias.cache_scope());
        assert!(Arc::ptr_eq(&by_none.snapshots, &by_key.snapshots));

        assert_eq!(registry.retire("default").status, 409);
        assert_eq!(registry.retire("seed11-scale0.02-fpgrowth").status, 409);
        assert_eq!(registry.retire("seed99-scale0.02-fpgrowth").status, 404);
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn unknown_corpora_resolve_to_not_found() {
        let registry = registry();
        match registry.resolve(Some("seed99-scale0.5-eclat")) {
            Err(CorpusError::NotFound(key)) => assert_eq!(key, "seed99-scale0.5-eclat"),
            other => panic!("expected NotFound, got {other:?}"),
        }
        let response = CorpusError::NotFound("x".into()).to_response();
        assert_eq!(response.status, 404);
        let response =
            CorpusError::Building { key: "x".into(), retry_after_ms: 250 }.to_response();
        assert_eq!(response.status, 409);
        assert_eq!(body_json(&response).as_object().unwrap().get("retry_after_ms").unwrap().as_u64(), Some(250));
    }

    #[test]
    fn register_builds_swaps_and_retires() {
        let registry = registry();
        let spec = CorpusSpec {
            cuisines: Some(vec!["ITA".parse().unwrap()]),
            ..fixture_spec()
        };
        let key = spec.canonical_key();

        let response = registry.register(spec.clone());
        assert_eq!(response.status, 202, "{}", String::from_utf8_lossy(&response.body));
        assert!(registry.wait_ready(&key, Duration::from_secs(120)));
        let first = registry.resolve(Some(&key)).unwrap();
        assert_eq!(first.epoch(), 1);
        assert_eq!(first.snapshots.version(), key);
        // The subset corpus only contains the requested cuisine.
        assert!(first.snapshots.get("/fig4/ITA").is_some());
        assert!(first.snapshots.get("/fig4/FRA").is_none());

        // Hot swap: same spec, new epoch, byte-identical bodies.
        let response = registry.register(spec);
        assert_eq!(response.status, 202);
        assert!(registry.wait_ready(&key, Duration::from_secs(120)));
        let second = registry.resolve(Some(&key)).unwrap();
        assert_eq!(second.epoch(), 2);
        assert_ne!(first.cache_scope(), second.cache_scope());
        for (path, body) in first.snapshots.iter() {
            assert_eq!(
                second.snapshots.get(path).as_deref().map(|b| b.as_slice()),
                Some(body.as_slice()),
                "{path} changed across epochs"
            );
        }

        let stats = registry.stats();
        assert_eq!(stats.builds, 2);
        assert_eq!(stats.swaps, 1);

        // Retire: resolve 404s, the default corpus is untouched.
        assert_eq!(registry.retire(&key).status, 200);
        assert!(matches!(registry.resolve(Some(&key)), Err(CorpusError::NotFound(_))));
        assert!(registry.resolve(None).is_ok());
        assert_eq!(registry.retire(&key).status, 200, "retire is idempotent");
    }
}
