//! # cuisine-serve
//!
//! A dependency-free HTTP/1.1 serving layer over the deterministic
//! analysis pipeline: every paper artifact (Table I, Figs. 1–4, the
//! Eq. 2 similarity matrix) becomes an endpoint, precomputed once at
//! startup and answered as a pure lookup.
//!
//! Layers (see DESIGN.md §7):
//!
//! * [`http`] — bounded, panic-free request parsing and response
//!   serialization over `std::net` (no registry access exists, so there is
//!   no hyper to lean on);
//! * [`snapshot`] — versioned artifact bodies built through one shared
//!   [`Experiment`](cuisine_core::Experiment) and its `TransactionCache`;
//! * [`lru`] + [`metrics`] — response cache keyed on canonicalized
//!   path+query, and the counters behind `/metrics`;
//! * [`evolve`] — the one on-demand endpoint: seeded, bounded,
//!   byte-deterministic ensemble runs;
//! * [`router`] — endpoint table tying the above together;
//! * [`server`] — accept loop, `cuisine-exec` worker pool, graceful
//!   drain-on-shutdown;
//! * [`client`] — the minimal blocking client shared by the integration
//!   tests, `serve --self-check`, and `loadgen`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod evolve;
pub mod http;
pub mod lru;
pub mod metrics;
pub mod router;
pub mod server;
pub mod snapshot;
#[cfg(test)]
pub(crate) mod testutil;

pub use http::{Request, Response};
pub use metrics::SnapshotInfo;
pub use router::AppState;
pub use server::{Server, ServerConfig};
pub use snapshot::SnapshotStore;
