//! # cuisine-serve
//!
//! A dependency-free HTTP/1.1 serving layer over the deterministic
//! analysis pipeline: every paper artifact (Table I, Figs. 1–4, the
//! Eq. 2 similarity matrix) becomes an endpoint, precomputed once at
//! startup and answered as a pure lookup.
//!
//! Layers (see DESIGN.md §7):
//!
//! * [`http`] — bounded, panic-free incremental request framing
//!   ([`FrameReader`]: keep-alive + pipelining from arbitrary byte
//!   chunks) and response serialization over `std::net` (no registry
//!   access exists, so there is no hyper to lean on);
//! * [`snapshot`] — versioned artifact bodies built through one shared
//!   [`Experiment`](cuisine_core::Experiment) and its `TransactionCache`;
//! * [`lru`] + [`metrics`] — response cache keyed on canonicalized
//!   path+query, and the counters behind `/metrics`;
//! * [`evolve`] — the one on-demand endpoint: seeded, bounded,
//!   byte-deterministic ensemble runs, single-flighted by the
//!   [`EvolveEngine`] over a seeded-result cache;
//! * [`registry`] — the multi-corpus snapshot registry: epoch-versioned
//!   corpus entries, background builds with coalesced registrations,
//!   atomic hot-swap, last-good degradation on failed rebuilds, and the
//!   `/admin/corpora` API;
//! * [`deadline`] — per-request millisecond budgets (`X-Deadline-Ms`,
//!   clamped) and the `504` expiry contract;
//! * [`router`] — endpoint table tying the above together;
//! * [`server`] — sharded connection event loops behind one acceptor,
//!   keep-alive/pipelining, idle sweep, graceful drain-on-shutdown;
//! * [`client`] — the minimal blocking client (one-shot and persistent
//!   [`client::Connection`]) shared by the integration tests,
//!   `serve --self-check`, and `loadgen`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod deadline;
pub mod evolve;
pub mod http;
pub mod lru;
pub mod metrics;
pub mod registry;
pub mod router;
pub mod server;
pub mod snapshot;
#[cfg(test)]
pub(crate) mod testutil;

pub use deadline::DeadlineConfig;
pub use evolve::{EvolveEngine, EvolveRequest, EvolveTask, Submitted};
pub use http::{Frame, FrameReader, FramedRequest, Request, Response};
pub use metrics::{RegistryStats, SnapshotInfo};
pub use registry::{
    BuildOptions, Clock, CorpusError, CorpusHandle, CorpusRegistry, CorpusSpec, RegistryConfig,
};
pub use router::{AppState, Routed};
pub use server::{Server, ServerConfig};
pub use snapshot::SnapshotStore;
