//! Precomputed, versioned response bodies for every paper artifact.
//!
//! The serving layer's core trade: pay the whole analysis pipeline once at
//! startup, then answer hot endpoints with pure lookups. [`SnapshotStore`]
//! runs the same `_with` pipeline variants the batch `exp_*` binaries use
//! — through one [`Experiment`], so every stage shares its
//! `TransactionCache` — and keeps each artifact's canonical JSON encoding
//! as an `Arc<Vec<u8>>`. Bodies are byte-identical to what the offline
//! pipeline serializes for the same configuration (the contract
//! `tests/determinism.rs` established per thread count/cache flag, now
//! extended over HTTP by `crates/serve/tests/server_integration.rs`).

use std::collections::BTreeMap;
use std::sync::Arc;

use cuisine_core::Experiment;
use cuisine_data::CUISINES;
use cuisine_evolution::{EvaluationConfig, ModelKind};
use cuisine_mining::ItemMode;
use serde::{Map, Serialize, Value};

use crate::metrics::SnapshotInfo;

/// Precomputed artifact bodies, keyed by canonical decoded path.
#[derive(Debug)]
pub struct SnapshotStore {
    version: String,
    /// Label of the mining kernel the snapshots were built with.
    miner: &'static str,
    /// Wall-clock of the build in milliseconds. Zero until the embedding
    /// records it via [`SnapshotStore::set_build_wall_ms`] — the store
    /// does not read clocks itself (the serving library is on the
    /// deterministic-path lint budget; binaries already own the timers).
    build_wall_ms: u64,
    /// Wall-clock of the mining stage (the two `fig3` passes — the part
    /// the kernel choice actually accelerates) in milliseconds. Zero
    /// unless the build ran through [`SnapshotStore::build_timed`] with a
    /// real clock; measured via the *injected* clock for the same lint
    /// reason as `build_wall_ms`.
    mining_wall_ms: u64,
    entries: BTreeMap<String, Arc<Vec<u8>>>,
}

fn encode<T: Serialize>(value: &T) -> Arc<Vec<u8>> {
    Arc::new(
        serde_json::to_string(value)
            .expect("pipeline artifacts serialize")
            .into_bytes(),
    )
}

impl SnapshotStore {
    /// Run the full pipeline and capture every artifact.
    ///
    /// `version` tags the snapshot set (exported by `/healthz`,
    /// `/metrics`, and the index document); `fig4_models` and `fig4`
    /// control the Fig. 4 evaluation, which dominates startup cost
    /// (per-cuisine × per-model replicate ensembles).
    pub fn build(
        experiment: &Experiment,
        version: String,
        fig4_models: &[ModelKind],
        fig4: &EvaluationConfig,
    ) -> Self {
        Self::build_timed(experiment, version, fig4_models, fig4, &|| 0)
    }

    /// [`SnapshotStore::build`] with an injected millisecond clock, used
    /// to time the mining stage (`mining_wall_ms`). A constant clock —
    /// what [`SnapshotStore::build`] passes — records zero.
    pub fn build_timed(
        experiment: &Experiment,
        version: String,
        fig4_models: &[ModelKind],
        fig4: &EvaluationConfig,
        clock: &(dyn Fn() -> u64 + Sync),
    ) -> Self {
        let mut entries = BTreeMap::new();
        let mut put = |path: &str, body: Arc<Vec<u8>>| {
            entries.insert(path.to_string(), body);
        };

        put("/table1", encode(&experiment.table1()));
        put("/fig1", encode(&experiment.fig1()));
        put("/fig2", encode(&experiment.fig2()));

        let mining_started = clock();
        for (mode, label) in [(ItemMode::Ingredients, "ingredient"), (ItemMode::Categories, "category")]
        {
            let (analysis, matrix) = experiment.fig3(mode);
            put(&format!("/fig3/{label}"), encode(&analysis));
            put(&format!("/similarity/{label}"), encode(&matrix));
        }
        let mining_wall_ms = clock().saturating_sub(mining_started);

        let evaluation = experiment.fig4_models(fig4_models, fig4);
        for cuisine in &evaluation.cuisines {
            put(&format!("/fig4/{}", cuisine.code), encode(cuisine));
        }
        put("/fig4", encode(&evaluation));

        put("/cuisines", Arc::new(cuisines_document(experiment).into_bytes()));

        SnapshotStore {
            version,
            miner: experiment.config().miner.label(),
            build_wall_ms: 0,
            mining_wall_ms,
            entries,
        }
    }

    /// Body for a canonical path, if snapshotted.
    pub fn get(&self, path: &str) -> Option<Arc<Vec<u8>>> {
        self.entries.get(path).map(Arc::clone)
    }

    /// Snapshot set version tag.
    pub fn version(&self) -> &str {
        &self.version
    }

    /// Label of the mining kernel that produced these snapshots.
    pub fn miner(&self) -> &'static str {
        self.miner
    }

    /// Record the measured build wall-clock (milliseconds), reported by
    /// `/metrics`. Called by the embedding that timed the build.
    pub fn set_build_wall_ms(&mut self, ms: u64) {
        self.build_wall_ms = ms;
    }

    /// Wall-clock of the mining stage in milliseconds (zero when the
    /// build ran without a real clock).
    pub fn mining_wall_ms(&self) -> u64 {
        self.mining_wall_ms
    }

    /// Provenance summary for `/metrics`.
    pub fn info(&self) -> SnapshotInfo<'_> {
        SnapshotInfo {
            version: &self.version,
            miner: self.miner,
            build_wall_ms: self.build_wall_ms,
            mining_wall_ms: self.mining_wall_ms,
        }
    }

    /// Number of snapshotted artifacts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no artifacts were captured (never the case after
    /// [`SnapshotStore::build`]).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sorted canonical paths, for the index document.
    pub fn paths(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// Iterate `(path, body)` pairs in path order — the offline
    /// byte-comparison primitive the hot-swap tests diff epochs with.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Arc<Vec<u8>>)> {
        self.entries.iter().map(|(path, body)| (path.as_str(), body))
    }

    /// Total bytes held across all bodies.
    pub fn total_bytes(&self) -> usize {
        self.entries.values().map(|b| b.len()).sum()
    }
}

/// The `/cuisines` document: Table I reference rows joined with the
/// corpus actually loaded into this server.
fn cuisines_document(experiment: &Experiment) -> String {
    let corpus = experiment.corpus();
    let rows: Vec<Value> = cuisine_data::CuisineId::all()
        .filter_map(|id| {
            let info = CUISINES.get(id.index())?;
            let mut row = Map::new();
            row.insert("code", Value::String(info.code.to_string()));
            row.insert("name", Value::String(info.name.to_string()));
            row.insert("paper_recipes", Value::U64(info.recipes as u64));
            row.insert("paper_ingredients", Value::U64(info.ingredients as u64));
            row.insert("corpus_recipes", Value::U64(corpus.recipe_count(id) as u64));
            row.insert(
                "corpus_ingredients",
                Value::U64(corpus.unique_ingredient_count(id) as u64),
            );
            Some(Value::Object(row))
        })
        .collect();
    serde_json::to_string(&Value::Array(rows)).expect("cuisines document serializes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fixture, FIXTURE_VERSION};

    #[test]
    fn captures_every_artifact_family() {
        let (_, store) = fixture();
        for path in
            ["/table1", "/fig1", "/fig2", "/fig3/ingredient", "/fig3/category",
             "/similarity/ingredient", "/similarity/category", "/fig4", "/cuisines"]
        {
            assert!(store.get(path).is_some(), "missing {path}");
        }
        // One per-cuisine fig4 entry per populated cuisine.
        let per_cuisine = store.paths().filter(|p| p.starts_with("/fig4/")).count();
        assert!(per_cuisine > 0);
        assert_eq!(store.version(), FIXTURE_VERSION);
        assert!(!store.is_empty());
        assert!(store.total_bytes() > 0);
    }

    #[test]
    fn bodies_match_the_offline_pipeline_byte_for_byte() {
        let (experiment, store) = fixture();
        let offline = serde_json::to_string(&experiment.table1()).unwrap();
        assert_eq!(store.get("/table1").unwrap().as_slice(), offline.as_bytes());
        let (analysis, matrix) = experiment.fig3(ItemMode::Categories);
        assert_eq!(
            store.get("/fig3/category").unwrap().as_slice(),
            serde_json::to_string(&analysis).unwrap().as_bytes()
        );
        assert_eq!(
            store.get("/similarity/category").unwrap().as_slice(),
            serde_json::to_string(&matrix).unwrap().as_bytes()
        );
    }

    #[test]
    fn info_reports_miner_and_build_time() {
        let (experiment, store) = fixture();
        let info = store.info();
        assert_eq!(info.version, FIXTURE_VERSION);
        assert_eq!(info.miner, experiment.config().miner.label());
        assert_eq!(info.build_wall_ms, 0, "fixture build is not timed");
        assert_eq!(store.miner(), "fpgrowth", "fixture uses the default kernel");
    }

    #[test]
    fn cuisines_document_lists_all_25() {
        let (_, store) = fixture();
        let body = store.get("/cuisines").unwrap();
        let doc: Value = serde_json::from_str(std::str::from_utf8(&body).unwrap()).unwrap();
        assert_eq!(doc.as_array().unwrap().len(), 25);
    }
}
