//! A minimal blocking HTTP/1.1 client.
//!
//! Shared by the integration tests, the `serve --self-check` smoke path,
//! and the `loadgen` binary — the same client drives all three, so the CI
//! smoke test exercises exactly the code path the benchmarks measure.
//!
//! Two modes:
//!
//! * [`request`]/[`get`]/[`post_json`] — one `Connection: close` request
//!   per socket, the original model; still what the protocol-error tests
//!   use.
//! * [`Connection`] — a persistent keep-alive connection with split
//!   [`Connection::send`]/[`Connection::recv`] so callers can pipeline:
//!   write a batch of requests back-to-back, then read the batch of
//!   responses in order.
//!
//! Both modes can attach an `X-Deadline-Ms` budget header
//! ([`Connection::set_deadline_ms`]) and retry transient failures with
//! seeded exponential backoff ([`RetryPolicy`],
//! [`Connection::roundtrip_retrying`]): transport errors reconnect, and
//! `409`/`503` answers honor the server's `retry_after_ms` hint.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response: status code and body bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: Vec<u8>,
}

/// Perform one request. `body` implies `POST` with a JSON content type;
/// otherwise a `GET` is sent.
pub fn request(
    addr: SocketAddr,
    path: &str,
    body: Option<&[u8]>,
    timeout: Duration,
) -> std::io::Result<ClientResponse> {
    let method = if body.is_some() { "POST" } else { "GET" };
    request_method(addr, method, path, body, timeout)
}

/// Perform one request with an explicit method (`GET`, `POST`,
/// `DELETE` — whatever the admin API needs). A body always carries a
/// JSON content type.
pub fn request_method(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
    timeout: Duration,
) -> std::io::Result<ClientResponse> {
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let _ = stream.set_nodelay(true);
    let mut stream = stream;

    match body {
        None => write!(
            stream,
            "{method} {path} HTTP/1.1\r\nhost: {addr}\r\nconnection: close\r\n\r\n"
        )?,
        Some(payload) => {
            write!(
                stream,
                "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
                payload.len()
            )?;
            stream.write_all(payload)?;
        }
    }
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

/// `GET path`.
pub fn get(addr: SocketAddr, path: &str, timeout: Duration) -> std::io::Result<ClientResponse> {
    request(addr, path, None, timeout)
}

/// `POST path` with a JSON body.
pub fn post_json(
    addr: SocketAddr,
    path: &str,
    json: &str,
    timeout: Duration,
) -> std::io::Result<ClientResponse> {
    request(addr, path, Some(json.as_bytes()), timeout)
}

/// `DELETE path` (the admin API's corpus retirement).
pub fn delete(addr: SocketAddr, path: &str, timeout: Duration) -> std::io::Result<ClientResponse> {
    request_method(addr, "DELETE", path, None, timeout)
}

/// Bounded retry with seeded exponential backoff.
///
/// Deterministic: the jitter is a pure `splitmix64` hash of
/// `(seed, attempt)`, so two clients with the same seed back off
/// identically. When a `409`/`503` body carries a `retry_after_ms` hint
/// the hint wins (clamped to `max_backoff_ms`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (1 = no retry).
    pub attempts: u32,
    /// First backoff, doubled per retry.
    pub base_ms: u64,
    /// Upper clamp on any single backoff (including hints).
    pub max_backoff_ms: u64,
    /// Jitter seed.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { attempts: 3, base_ms: 50, max_backoff_ms: 2_000, seed: 0 }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `retry` (0-based), honoring a server
    /// `retry_after_ms` hint when present.
    pub fn backoff_ms(&self, retry: u32, hint: Option<u64>) -> u64 {
        let wait = match hint {
            Some(hint) => hint,
            None => {
                let exp = self.base_ms.saturating_mul(1u64 << retry.min(16));
                let jitter = splitmix64(self.seed ^ u64::from(retry)) % self.base_ms.max(1);
                exp.saturating_add(jitter)
            }
        };
        wait.min(self.max_backoff_ms)
    }
}

/// Statuses worth retrying: still-building (`409`) and overload (`503`)
/// are transient by contract; everything else is either success or a
/// deterministic error a retry cannot fix.
pub fn retryable_status(status: u16) -> bool {
    matches!(status, 409 | 503)
}

/// Extract the `retry_after_ms` hint from a `409`/`503` JSON body.
pub fn retry_after_hint(response: &ClientResponse) -> Option<u64> {
    let text = std::str::from_utf8(&response.body).ok()?;
    let doc: serde::Value = serde_json::from_str(text).ok()?;
    doc.as_object()?.get("retry_after_ms")?.as_u64()
}

/// splitmix64 finalizer — the workspace's standard pure hash, used here
/// for deterministic backoff jitter (no RNG state).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A persistent keep-alive connection.
///
/// Requests are written without `Connection: close`, so the server keeps
/// the socket open between exchanges. [`Connection::send`] and
/// [`Connection::recv`] are split so callers can pipeline (N sends, then
/// N recvs — responses arrive in request order); [`Connection::roundtrip`]
/// is the common one-at-a-time case.
pub struct Connection {
    stream: TcpStream,
    addr: SocketAddr,
    timeout: Duration,
    host: String,
    /// `X-Deadline-Ms` value attached to every request, if any.
    deadline_ms: Option<u64>,
    /// Bytes read past the end of the previous response.
    buf: Vec<u8>,
}

impl Connection {
    /// Connect with the given timeout applied to connect/read/write.
    pub fn open(addr: SocketAddr, timeout: Duration) -> std::io::Result<Connection> {
        let stream = Self::dial(addr, timeout)?;
        Ok(Connection {
            stream,
            addr,
            timeout,
            host: addr.to_string(),
            deadline_ms: None,
            buf: Vec::new(),
        })
    }

    fn dial(addr: SocketAddr, timeout: Duration) -> std::io::Result<TcpStream> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        let _ = stream.set_nodelay(true);
        Ok(stream)
    }

    /// Attach (or clear) an `X-Deadline-Ms` budget header on every
    /// subsequent request.
    pub fn set_deadline_ms(&mut self, deadline_ms: Option<u64>) {
        self.deadline_ms = deadline_ms;
    }

    /// Drop the current socket and dial a fresh one; any buffered partial
    /// response is discarded (the retry path after a transport error).
    pub fn reconnect(&mut self) -> std::io::Result<()> {
        self.stream = Self::dial(self.addr, self.timeout)?;
        self.buf.clear();
        Ok(())
    }

    /// Write one request without reading its response. `body` implies
    /// `POST` with a JSON content type; otherwise a `GET` is sent.
    pub fn send(&mut self, path: &str, body: Option<&[u8]>) -> std::io::Result<()> {
        let method = if body.is_some() { "POST" } else { "GET" };
        self.send_method(method, path, body)
    }

    /// [`Connection::send`] with an explicit method (`GET`, `POST`,
    /// `DELETE`). A body always carries a JSON content type.
    pub fn send_method(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> std::io::Result<()> {
        let host = &self.host;
        let deadline = match self.deadline_ms {
            Some(ms) => format!("x-deadline-ms: {ms}\r\n"),
            None => String::new(),
        };
        match body {
            None => write!(
                self.stream,
                "{method} {path} HTTP/1.1\r\nhost: {host}\r\n{deadline}\r\n"
            )?,
            Some(payload) => {
                write!(
                    self.stream,
                    "{method} {path} HTTP/1.1\r\nhost: {host}\r\ncontent-type: application/json\r\ncontent-length: {}\r\n{deadline}\r\n",
                    payload.len()
                )?;
                self.stream.write_all(payload)?;
            }
        }
        self.stream.flush()
    }

    /// Read the next pipelined response off the connection.
    pub fn recv(&mut self) -> std::io::Result<ClientResponse> {
        loop {
            if let Some((response, consumed)) = split_response(&self.buf)? {
                self.buf.drain(..consumed);
                return Ok(response);
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(invalid("connection closed mid-response")),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// One request-response exchange on the persistent connection.
    pub fn roundtrip(
        &mut self,
        path: &str,
        body: Option<&[u8]>,
    ) -> std::io::Result<ClientResponse> {
        self.send(path, body)?;
        self.recv()
    }

    /// `GET path` on the persistent connection.
    pub fn get(&mut self, path: &str) -> std::io::Result<ClientResponse> {
        self.roundtrip(path, None)
    }

    /// `POST path` with a JSON body on the persistent connection.
    pub fn post_json(&mut self, path: &str, json: &str) -> std::io::Result<ClientResponse> {
        self.roundtrip(path, Some(json.as_bytes()))
    }

    /// [`Connection::roundtrip`] with bounded retry: transport errors
    /// reconnect and retry; `409`/`503` answers back off (honoring the
    /// server's `retry_after_ms` hint) and retry; everything else returns
    /// immediately. The final attempt's outcome is returned as-is.
    pub fn roundtrip_retrying(
        &mut self,
        path: &str,
        body: Option<&[u8]>,
        policy: &RetryPolicy,
    ) -> std::io::Result<ClientResponse> {
        let attempts = policy.attempts.max(1);
        let mut outcome = self.roundtrip(path, body);
        for retry in 0..attempts.saturating_sub(1) {
            let hint = match &outcome {
                Ok(response) if retryable_status(response.status) => retry_after_hint(response),
                Ok(_) => return outcome,
                Err(_) => {
                    // The socket is in an unknown state after a transport
                    // error; a fresh connection is the only safe resume.
                    // A failed reconnect reports the dial error.
                    if let Err(e) = self.reconnect() {
                        outcome = Err(e);
                        continue;
                    }
                    None
                }
            };
            std::thread::sleep(Duration::from_millis(policy.backoff_ms(retry, hint)));
            outcome = self.roundtrip(path, body);
        }
        outcome
    }
}

/// Try to split one complete response off the front of `buf`. Returns
/// `Ok(None)` when more bytes are needed, `Ok(Some((response, consumed)))`
/// on success. Requires `content-length` (the server always sends it).
fn split_response(buf: &[u8]) -> std::io::Result<Option<(ClientResponse, usize)>> {
    let Some(header_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") else {
        return Ok(None);
    };
    let head = std::str::from_utf8(&buf[..header_end])
        .map_err(|_| invalid("non-UTF-8 response head"))?;
    let status_line = head.lines().next().ok_or_else(|| invalid("empty response"))?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid("malformed status line"))?;
    let declared = head
        .lines()
        .find_map(|l| {
            l.split_once(':')
                .filter(|(k, _)| k.trim().eq_ignore_ascii_case("content-length"))
        })
        .and_then(|(_, v)| v.trim().parse::<usize>().ok())
        .ok_or_else(|| invalid("keep-alive response without content-length"))?;
    let body_start = header_end + 4;
    let total = body_start + declared;
    if buf.len() < total {
        return Ok(None);
    }
    Ok(Some((
        ClientResponse {
            status,
            body: buf[body_start..total].to_vec(),
        },
        total,
    )))
}

fn invalid(message: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message)
}

/// Split a raw `Connection: close` response into status and body.
fn parse_response(raw: &[u8]) -> std::io::Result<ClientResponse> {
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| invalid("response has no header terminator"))?;
    let head = std::str::from_utf8(&raw[..header_end])
        .map_err(|_| invalid("non-UTF-8 response head"))?;
    let status_line = head.lines().next().ok_or_else(|| invalid("empty response"))?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid("malformed status line"))?;
    let body = raw[header_end + 4..].to_vec();

    // `content-length` is always present; verify we read the whole body
    // so truncated (reset) responses surface as errors, not short bodies.
    let declared = head
        .lines()
        .find_map(|l| l.split_once(':').filter(|(k, _)| k.trim().eq_ignore_ascii_case("content-length")))
        .and_then(|(_, v)| v.trim().parse::<usize>().ok());
    if let Some(declared) = declared {
        if declared != body.len() {
            return Err(invalid("truncated response body"));
        }
    }
    Ok(ClientResponse { status, body })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_complete_response() {
        let raw = b"HTTP/1.1 200 OK\r\ncontent-length: 4\r\n\r\nbody";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.body, b"body");
    }

    #[test]
    fn rejects_truncated_bodies() {
        let raw = b"HTTP/1.1 200 OK\r\ncontent-length: 10\r\n\r\nbody";
        assert!(parse_response(raw).is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http").is_err());
        assert!(parse_response(b"HTTP/1.1 abc\r\n\r\n").is_err());
    }

    #[test]
    fn split_response_handles_partial_and_pipelined_input() {
        let one = b"HTTP/1.1 200 OK\r\ncontent-length: 2\r\n\r\nok";
        // Incomplete prefixes want more bytes.
        for cut in 0..one.len() {
            assert!(matches!(split_response(&one[..cut]), Ok(None)), "cut {cut}");
        }
        // Two back-to-back responses split cleanly in order.
        let mut two = one.to_vec();
        two.extend_from_slice(b"HTTP/1.1 404 Not Found\r\ncontent-length: 0\r\n\r\n");
        let (first, consumed) = split_response(&two).unwrap().unwrap();
        assert_eq!((first.status, first.body.as_slice()), (200, &b"ok"[..]));
        let (second, rest) = split_response(&two[consumed..]).unwrap().unwrap();
        assert_eq!(second.status, 404);
        assert_eq!(consumed + rest, two.len());
    }

    #[test]
    fn split_response_requires_content_length() {
        assert!(split_response(b"HTTP/1.1 200 OK\r\n\r\n").is_err());
    }

    #[test]
    fn backoff_is_seed_deterministic_and_honors_hints() {
        let policy = RetryPolicy { attempts: 4, base_ms: 50, max_backoff_ms: 2_000, seed: 9 };
        let again = RetryPolicy { seed: 9, ..policy };
        for retry in 0..4 {
            assert_eq!(policy.backoff_ms(retry, None), again.backoff_ms(retry, None));
        }
        // Exponential shape: each retry's floor doubles.
        assert!(policy.backoff_ms(0, None) >= 50);
        assert!(policy.backoff_ms(1, None) >= 100);
        assert!(policy.backoff_ms(2, None) >= 200);
        // Hints win but stay clamped.
        assert_eq!(policy.backoff_ms(0, Some(123)), 123);
        assert_eq!(policy.backoff_ms(0, Some(99_999)), 2_000);
        // Overflow-proof at absurd retry counts.
        assert!(policy.backoff_ms(u32::MAX, None) <= 2_000);
    }

    #[test]
    fn retry_hint_parses_the_409_contract_body() {
        let response = ClientResponse {
            status: 409,
            body: br#"{"error":"corpus \"x\" is still building","status":409,"retry_after_ms":250}"#
                .to_vec(),
        };
        assert_eq!(retry_after_hint(&response), Some(250));
        assert!(retryable_status(response.status));
        let plain = ClientResponse { status: 404, body: b"{}".to_vec() };
        assert_eq!(retry_after_hint(&plain), None);
        assert!(!retryable_status(plain.status));
        assert!(retryable_status(503));
        assert!(!retryable_status(504), "a 504 spent the whole budget; retrying is the caller's call");
    }
}
