//! A minimal blocking HTTP/1.1 client.
//!
//! Shared by the integration tests, the `serve --self-check` smoke path,
//! and the `loadgen` binary — the same client drives all three, so the CI
//! smoke test exercises exactly the code path the benchmarks measure.
//! One request per connection, mirroring the server's `Connection: close`
//! model.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response: status code and body bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: Vec<u8>,
}

/// Perform one request. `body` implies `POST` with a JSON content type;
/// otherwise a `GET` is sent.
pub fn request(
    addr: SocketAddr,
    path: &str,
    body: Option<&[u8]>,
    timeout: Duration,
) -> std::io::Result<ClientResponse> {
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let _ = stream.set_nodelay(true);
    let mut stream = stream;

    match body {
        None => write!(
            stream,
            "GET {path} HTTP/1.1\r\nhost: {addr}\r\nconnection: close\r\n\r\n"
        )?,
        Some(payload) => {
            write!(
                stream,
                "POST {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
                payload.len()
            )?;
            stream.write_all(payload)?;
        }
    }
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

/// `GET path`.
pub fn get(addr: SocketAddr, path: &str, timeout: Duration) -> std::io::Result<ClientResponse> {
    request(addr, path, None, timeout)
}

/// `POST path` with a JSON body.
pub fn post_json(
    addr: SocketAddr,
    path: &str,
    json: &str,
    timeout: Duration,
) -> std::io::Result<ClientResponse> {
    request(addr, path, Some(json.as_bytes()), timeout)
}

fn invalid(message: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message)
}

/// Split a raw `Connection: close` response into status and body.
fn parse_response(raw: &[u8]) -> std::io::Result<ClientResponse> {
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| invalid("response has no header terminator"))?;
    let head = std::str::from_utf8(&raw[..header_end])
        .map_err(|_| invalid("non-UTF-8 response head"))?;
    let status_line = head.lines().next().ok_or_else(|| invalid("empty response"))?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid("malformed status line"))?;
    let body = raw[header_end + 4..].to_vec();

    // `content-length` is always present; verify we read the whole body
    // so truncated (reset) responses surface as errors, not short bodies.
    let declared = head
        .lines()
        .find_map(|l| l.split_once(':').filter(|(k, _)| k.trim().eq_ignore_ascii_case("content-length")))
        .and_then(|(_, v)| v.trim().parse::<usize>().ok());
    if let Some(declared) = declared {
        if declared != body.len() {
            return Err(invalid("truncated response body"));
        }
    }
    Ok(ClientResponse { status, body })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_complete_response() {
        let raw = b"HTTP/1.1 200 OK\r\ncontent-length: 4\r\n\r\nbody";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.body, b"body");
    }

    #[test]
    fn rejects_truncated_bodies() {
        let raw = b"HTTP/1.1 200 OK\r\ncontent-length: 10\r\n\r\nbody";
        assert!(parse_response(raw).is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http").is_err());
        assert!(parse_response(b"HTTP/1.1 abc\r\n\r\n").is_err());
    }
}
