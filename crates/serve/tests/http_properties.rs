//! Property tests for the bounded HTTP layer: arbitrary — including
//! malformed — input must map to a status-carrying parse error, never a
//! panic, and well-formed input must round-trip. The canonical cache key
//! must be insensitive to query order, encoding, and redundant trailing
//! slashes (the LRU correctness contract).

use std::io::Cursor;

use cuisine_serve::http::{
    canonical_key, parse_header_line, parse_query, parse_request_line, percent_decode,
    percent_encode, read_request, Method,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn request_line_parser_never_panics(line in "[ -~]{0,120}") {
        match parse_request_line(&line) {
            Ok((method, path, _query)) => {
                prop_assert!(matches!(method, Method::Get | Method::Post));
                prop_assert!(path.starts_with('/'));
            }
            Err(e) => prop_assert!(
                matches!(e.status, 400 | 405 | 505),
                "unexpected status {} for line {:?}", e.status, line
            ),
        }
    }

    #[test]
    fn well_formed_request_lines_round_trip(
        path in "/[a-z0-9/.-]{0,24}",
        key in "[a-z]{1,8}",
        value in "[a-z0-9]{0,8}",
    ) {
        let line = format!("GET {path}?{key}={value} HTTP/1.1");
        let (method, parsed_path, query) = parse_request_line(&line).unwrap();
        prop_assert_eq!(method, Method::Get);
        prop_assert_eq!(parsed_path, path);
        prop_assert_eq!(query, vec![(key, value)]);
    }

    #[test]
    fn percent_coding_round_trips(s in "[ -~]{0,40}") {
        let encoded = percent_encode(&s);
        prop_assert_eq!(percent_decode(&encoded, false).unwrap(), s);
    }

    #[test]
    fn query_parser_never_panics(raw in "[ -~]{0,60}") {
        if let Ok(pairs) = parse_query(&raw) {
            // Segment count bounds the pair count.
            prop_assert!(pairs.len() <= raw.split('&').count());
        }
    }

    #[test]
    fn header_parser_never_panics(line in "[ -~]{0,80}") {
        match parse_header_line(&line) {
            Ok((name, _value)) => {
                prop_assert!(!name.is_empty());
                prop_assert!(!name.bytes().any(|b| b.is_ascii_uppercase()));
            }
            Err(e) => prop_assert_eq!(e.status, 400),
        }
    }

    #[test]
    fn well_formed_headers_round_trip(
        name in "[A-Za-z][A-Za-z0-9-]{0,10}",
        value in "[a-z0-9 !#$%]{0,30}",
    ) {
        let (n, v) = parse_header_line(&format!("{name}: {value}")).unwrap();
        prop_assert_eq!(n, name.to_ascii_lowercase());
        prop_assert_eq!(v.as_str(), value.trim());
    }

    #[test]
    fn read_request_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..600),
    ) {
        let mut reader = Cursor::new(bytes);
        match read_request(&mut reader) {
            Ok(request) => prop_assert!(request.path.starts_with('/')),
            Err(e) => prop_assert!(
                matches!(e.status, 400 | 405 | 411 | 413 | 431 | 501 | 505),
                "unexpected status {e}",
            ),
        }
    }

    #[test]
    fn read_request_parses_well_formed_posts(
        path in "/[a-z0-9]{0,12}",
        headers in prop::collection::vec(("[a-z][a-z0-9-]{0,9}", "[a-z0-9 ]{0,16}"), 0..8),
        body in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        // Generated names are at most 10 bytes, so they can never collide
        // with `content-length` or `transfer-encoding`.
        let mut raw = format!("POST {path} HTTP/1.1\r\ncontent-length: {}\r\n", body.len());
        for (name, value) in &headers {
            raw.push_str(&format!("{name}: {value}\r\n"));
        }
        raw.push_str("\r\n");
        let mut bytes = raw.into_bytes();
        bytes.extend_from_slice(&body);

        let request = read_request(&mut Cursor::new(bytes)).unwrap();
        prop_assert_eq!(request.method, Method::Post);
        prop_assert_eq!(request.path, path);
        prop_assert_eq!(request.body, body);
    }

    #[test]
    fn canonical_key_ignores_query_order(
        pairs in prop::collection::vec(("[a-z]{1,6}", "[a-z0-9]{0,6}"), 0..6),
    ) {
        let forward: Vec<(String, String)> = pairs.clone();
        let mut reversed = forward.clone();
        reversed.reverse();
        prop_assert_eq!(
            canonical_key(Method::Get, "/table1", &forward),
            canonical_key(Method::Get, "/table1", &reversed)
        );
    }

    #[test]
    fn canonical_key_trims_redundant_trailing_slash(path in "/[a-z0-9/]{0,16}") {
        let with_slash = format!("{path}/");
        prop_assert_eq!(
            canonical_key(Method::Get, &with_slash, &[]),
            canonical_key(Method::Get, path.trim_end_matches('/'), &[])
        );
    }

    #[test]
    fn canonical_key_separates_methods_and_paths(suffix in "[a-z]{1,8}") {
        let path = format!("/{suffix}");
        let get = canonical_key(Method::Get, &path, &[]);
        prop_assert_ne!(get.clone(), canonical_key(Method::Post, &path, &[]));
        prop_assert_ne!(get, canonical_key(Method::Get, "/other", &[]));
    }
}
