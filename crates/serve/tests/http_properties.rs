//! Property tests for the bounded HTTP layer: arbitrary — including
//! malformed — input must map to a status-carrying parse error, never a
//! panic, and well-formed input must round-trip. The canonical cache key
//! must be insensitive to query order, encoding, and redundant trailing
//! slashes (the LRU correctness contract). The incremental `FrameReader`
//! behind keep-alive/pipelining must recover pipelined request streams
//! exactly regardless of how the bytes are chunked, and fail closed
//! (Malformed once, then poisoned) on byte soup. Deadline arithmetic
//! (`X-Deadline-Ms` parsing, clamping, budget subtraction) must be total:
//! any header value maps to a budget in range, and the remaining-time
//! computation never under- or overflows.

use std::io::Cursor;

use cuisine_serve::deadline::{budget_ms, remaining_ms, timeout_response, DeadlineConfig};
use cuisine_serve::http::{
    canonical_key, parse_header_line, parse_query, parse_request_line, percent_decode,
    percent_encode, read_request, Frame, FrameReader, FramedRequest, Method,
};
use proptest::prelude::*;

/// Serialize one well-formed request the way a pipelining client would.
fn render_request(path: &str, body: Option<&[u8]>) -> Vec<u8> {
    let mut raw = match body {
        None => format!("GET {path} HTTP/1.1\r\nhost: test\r\n\r\n").into_bytes(),
        Some(payload) => {
            let mut head = format!(
                "POST {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n",
                payload.len()
            )
            .into_bytes();
            head.extend_from_slice(payload);
            head
        }
    };
    raw.shrink_to_fit();
    raw
}

/// Pull every currently-complete frame; `Some(status)` on a malformed
/// frame, `None` when the reader wants more bytes.
fn drain_frames(reader: &mut FrameReader, out: &mut Vec<FramedRequest>) -> Option<u16> {
    loop {
        match reader.next_frame() {
            Frame::NeedMore => return None,
            Frame::Malformed(e) => return Some(e.status),
            Frame::Request(framed) => out.push(framed),
        }
    }
}

/// Split `stream` into chunks whose sizes cycle through `cuts` (each at
/// least 1 byte), covering the stream exactly.
fn chunked<'a>(stream: &'a [u8], cuts: &[usize]) -> Vec<&'a [u8]> {
    let mut chunks = Vec::new();
    let mut at = 0;
    let mut i = 0;
    while at < stream.len() {
        let step = cuts.get(i % cuts.len().max(1)).copied().unwrap_or(1).max(1);
        let end = (at + step).min(stream.len());
        chunks.push(&stream[at..end]);
        at = end;
        i += 1;
    }
    chunks
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn request_line_parser_never_panics(line in "[ -~]{0,120}") {
        match parse_request_line(&line) {
            Ok((method, path, _query)) => {
                prop_assert!(matches!(method, Method::Get | Method::Post | Method::Delete));
                prop_assert!(path.starts_with('/'));
            }
            Err(e) => prop_assert!(
                matches!(e.status, 400 | 405 | 505),
                "unexpected status {} for line {:?}", e.status, line
            ),
        }
    }

    #[test]
    fn well_formed_request_lines_round_trip(
        path in "/[a-z0-9/.-]{0,24}",
        key in "[a-z]{1,8}",
        value in "[a-z0-9]{0,8}",
    ) {
        let line = format!("GET {path}?{key}={value} HTTP/1.1");
        let (method, parsed_path, query) = parse_request_line(&line).unwrap();
        prop_assert_eq!(method, Method::Get);
        prop_assert_eq!(parsed_path, path);
        prop_assert_eq!(query, vec![(key, value)]);
    }

    #[test]
    fn percent_coding_round_trips(s in "[ -~]{0,40}") {
        let encoded = percent_encode(&s);
        prop_assert_eq!(percent_decode(&encoded, false).unwrap(), s);
    }

    #[test]
    fn query_parser_never_panics(raw in "[ -~]{0,60}") {
        if let Ok(pairs) = parse_query(&raw) {
            // Segment count bounds the pair count.
            prop_assert!(pairs.len() <= raw.split('&').count());
        }
    }

    #[test]
    fn header_parser_never_panics(line in "[ -~]{0,80}") {
        match parse_header_line(&line) {
            Ok((name, _value)) => {
                prop_assert!(!name.is_empty());
                prop_assert!(!name.bytes().any(|b| b.is_ascii_uppercase()));
            }
            Err(e) => prop_assert_eq!(e.status, 400),
        }
    }

    #[test]
    fn well_formed_headers_round_trip(
        name in "[A-Za-z][A-Za-z0-9-]{0,10}",
        value in "[a-z0-9 !#$%]{0,30}",
    ) {
        let (n, v) = parse_header_line(&format!("{name}: {value}")).unwrap();
        prop_assert_eq!(n, name.to_ascii_lowercase());
        prop_assert_eq!(v.as_str(), value.trim());
    }

    #[test]
    fn read_request_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..600),
    ) {
        let mut reader = Cursor::new(bytes);
        match read_request(&mut reader) {
            Ok(request) => prop_assert!(request.path.starts_with('/')),
            Err(e) => prop_assert!(
                matches!(e.status, 400 | 405 | 411 | 413 | 431 | 501 | 505),
                "unexpected status {e}",
            ),
        }
    }

    #[test]
    fn read_request_parses_well_formed_posts(
        path in "/[a-z0-9]{0,12}",
        headers in prop::collection::vec(("[a-z][a-z0-9-]{0,9}", "[a-z0-9 ]{0,16}"), 0..8),
        body in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        // Generated names are at most 10 bytes, so they can never collide
        // with `content-length` or `transfer-encoding`.
        let mut raw = format!("POST {path} HTTP/1.1\r\ncontent-length: {}\r\n", body.len());
        for (name, value) in &headers {
            raw.push_str(&format!("{name}: {value}\r\n"));
        }
        raw.push_str("\r\n");
        let mut bytes = raw.into_bytes();
        bytes.extend_from_slice(&body);

        let request = read_request(&mut Cursor::new(bytes)).unwrap();
        prop_assert_eq!(request.method, Method::Post);
        prop_assert_eq!(request.path, path);
        prop_assert_eq!(request.body, body);
    }

    #[test]
    fn canonical_key_ignores_query_order(
        pairs in prop::collection::vec(("[a-z]{1,6}", "[a-z0-9]{0,6}"), 0..6),
    ) {
        let forward: Vec<(String, String)> = pairs.clone();
        let mut reversed = forward.clone();
        reversed.reverse();
        prop_assert_eq!(
            canonical_key(Method::Get, "/table1", &forward),
            canonical_key(Method::Get, "/table1", &reversed)
        );
    }

    #[test]
    fn canonical_key_trims_redundant_trailing_slash(path in "/[a-z0-9/]{0,16}") {
        let with_slash = format!("{path}/");
        prop_assert_eq!(
            canonical_key(Method::Get, &with_slash, &[]),
            canonical_key(Method::Get, path.trim_end_matches('/'), &[])
        );
    }

    #[test]
    fn canonical_key_separates_methods_and_paths(suffix in "[a-z]{1,8}") {
        let path = format!("/{suffix}");
        let get = canonical_key(Method::Get, &path, &[]);
        prop_assert_ne!(get.clone(), canonical_key(Method::Post, &path, &[]));
        prop_assert_ne!(get, canonical_key(Method::Get, "/other", &[]));
    }

    #[test]
    fn framer_recovers_pipelined_streams_at_arbitrary_split_points(
        requests in prop::collection::vec(
            ("/[a-z0-9]{0,12}", (any::<bool>(), prop::collection::vec(any::<u8>(), 0..120))
                .prop_map(|(post, body)| post.then_some(body))),
            1..8,
        ),
        cuts in prop::collection::vec(1usize..64, 1..16),
    ) {
        let mut stream = Vec::new();
        for (path, body) in &requests {
            stream.extend_from_slice(&render_request(path, body.as_deref()));
        }

        let mut reader = FrameReader::new();
        let mut recovered = Vec::new();
        for chunk in chunked(&stream, &cuts) {
            reader.feed(chunk);
            prop_assert_eq!(
                drain_frames(&mut reader, &mut recovered),
                None,
                "well-formed stream must never frame as malformed"
            );
        }

        prop_assert_eq!(recovered.len(), requests.len());
        for (framed, (path, body)) in recovered.iter().zip(&requests) {
            prop_assert!(!framed.close, "plain HTTP/1.1 requests keep the connection");
            prop_assert_eq!(&framed.request.path, path);
            match body {
                None => {
                    prop_assert_eq!(framed.request.method, Method::Get);
                    prop_assert!(framed.request.body.is_empty());
                }
                Some(payload) => {
                    prop_assert_eq!(framed.request.method, Method::Post);
                    prop_assert_eq!(&framed.request.body, payload);
                }
            }
        }
        prop_assert!(!reader.mid_frame(), "the exact stream must leave no residue");
    }

    #[test]
    fn framer_never_panics_on_byte_soup_and_poisons_on_malformed(
        bytes in prop::collection::vec(any::<u8>(), 0..600),
        cuts in prop::collection::vec(1usize..48, 1..12),
    ) {
        let mut reader = FrameReader::new();
        let mut recovered = Vec::new();
        let mut malformed: Option<u16> = None;
        for chunk in chunked(&bytes, &cuts) {
            reader.feed(chunk);
            match drain_frames(&mut reader, &mut recovered) {
                None => {}
                Some(status) => {
                    prop_assert!(
                        matches!(status, 400 | 405 | 411 | 413 | 431 | 501 | 505),
                        "unexpected framing status {status}"
                    );
                    malformed = Some(status);
                    break;
                }
            }
        }
        if let Some(status) = malformed {
            // Poisoned reader: it keeps reporting the same terminal error
            // and never yields another request, whatever arrives next.
            prop_assert!(reader.is_failed());
            reader.feed(b"GET / HTTP/1.1\r\n\r\n");
            match reader.next_frame() {
                Frame::Malformed(e) => prop_assert_eq!(e.status, status),
                other => prop_assert!(
                    false,
                    "poisoned reader produced {:?}",
                    matches!(other, Frame::Request(_))
                ),
            }
        }
    }

    #[test]
    fn deadline_budget_is_total_over_arbitrary_header_values(
        header in (any::<bool>(), "[ -~¡-ÿ]{0,24}")
            .prop_map(|(present, value)| present.then_some(value)),
        default_ms in 1u64..=1_000_000,
        max_ms in 1u64..=1_000_000,
    ) {
        // Any header value — absent, empty, non-numeric, non-ASCII,
        // overflowing — must produce a budget without panicking, and that
        // budget is either the configured default (unparseable input) or
        // a parsed value clamped into [1, max_ms].
        let config = DeadlineConfig { default_ms, max_ms };
        let budget = budget_ms(header.as_deref(), &config);
        prop_assert!(budget >= 1);
        prop_assert!(
            budget == config.default_ms || budget <= config.max_ms,
            "budget {budget} is neither the default {default_ms} nor within max {max_ms} \
             (header {header:?})"
        );
    }

    #[test]
    fn numeric_deadline_headers_clamp_to_the_configured_ceiling(
        value in 0u64..=u64::MAX / 2,
        max_ms in 1u64..=10_000_000,
        pad_left in " {0,3}",
        pad_right in " {0,3}",
    ) {
        let config = DeadlineConfig { default_ms: 30_000, max_ms };
        let header = format!("{pad_left}{value}{pad_right}");
        prop_assert_eq!(budget_ms(Some(&header), &config), value.clamp(1, max_ms));
    }

    #[test]
    fn remaining_budget_subtraction_is_exact_and_saturates(
        budget in any::<u64>(),
        elapsed in any::<u64>(),
    ) {
        match remaining_ms(budget, elapsed) {
            Some(left) => {
                prop_assert!(elapsed < budget, "Some({left}) but elapsed >= budget");
                prop_assert_eq!(left, budget - elapsed);
            }
            None => prop_assert!(elapsed >= budget, "expired before the budget ran out"),
        }
    }

    #[test]
    fn timeout_response_echoes_any_budget(budget in 1u64..=u64::MAX / 2) {
        let response = timeout_response(budget);
        prop_assert_eq!(response.status, 504);
        let text = std::str::from_utf8(&response.body).unwrap();
        prop_assert!(
            text.contains(&format!("\"deadline_ms\":{budget}")),
            "504 body must echo the budget: {text}"
        );
    }

    #[test]
    fn framer_matches_read_request_on_single_requests(
        path in "/[a-z0-9]{0,12}",
        body in (any::<bool>(), prop::collection::vec(any::<u8>(), 0..120))
            .prop_map(|(post, body)| post.then_some(body)),
    ) {
        let stream = render_request(&path, body.as_deref());
        let via_reader = read_request(&mut Cursor::new(stream.clone())).unwrap();

        let mut reader = FrameReader::new();
        reader.feed(&stream);
        let framed = match reader.next_frame() {
            Frame::Request(f) => Some(f),
            _ => None,
        };
        prop_assert!(framed.is_some(), "framer did not produce the request");
        let framed = framed.unwrap();
        prop_assert_eq!(framed.request.method, via_reader.method);
        prop_assert_eq!(framed.request.path, via_reader.path);
        prop_assert_eq!(framed.request.body, via_reader.body);
    }
}
