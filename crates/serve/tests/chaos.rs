//! Chaos suite: keep-alive load under injected faults.
//!
//! Pins the robustness contract of the fault-injection plane end to end
//! over real sockets:
//!
//! - under `evolve.compute` delays and `conn.write` short-writes, every
//!   response is either byte-identical to the healthy baseline or a
//!   well-formed contract error — never a hang, never stale bytes;
//! - a `pool.dispatch` fault that silently drops the computation job is
//!   converted into a clean `504` within the request's deadline budget
//!   instead of hanging the coalesced flight forever;
//! - the same `FaultPlan` seed over the same request sequence produces
//!   identical firing counts (the plane is deterministic, not lossy
//!   randomness);
//! - a server draining mid-faulted-load still answers everything it
//!   accepted and shuts down cleanly.
//!
//! Shares the seed 11 / scale 0.02 fixture style of
//! `tests/concurrency.rs`.

use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use cuisine_core::{Experiment, PipelineConfig};
use cuisine_evolution::{EnsembleConfig, EvaluationConfig, ModelKind};
use cuisine_serve::client;
use cuisine_serve::{AppState, Server, ServerConfig, SnapshotStore};
use cuisine_synth::SynthConfig;

const TIMEOUT: Duration = Duration::from_secs(30);

static FIXTURE: OnceLock<(Arc<Experiment>, Arc<SnapshotStore>)> = OnceLock::new();

fn fixture() -> &'static (Arc<Experiment>, Arc<SnapshotStore>) {
    FIXTURE.get_or_init(|| {
        let synth = SynthConfig { seed: 11, scale: 0.02, ..Default::default() };
        let experiment = Experiment::synthetic_with(&synth, PipelineConfig::default());
        let fig4 = EvaluationConfig {
            ensemble: EnsembleConfig { replicates: 2, seed: 7, threads: None },
            ..Default::default()
        };
        let store =
            SnapshotStore::build(&experiment, "chaos-v1".into(), &[ModelKind::Null], &fig4);
        (Arc::new(experiment), Arc::new(store))
    })
}

fn start_server(config: ServerConfig) -> Server {
    let (experiment, store) = fixture();
    let state = AppState::with_shared(Arc::clone(experiment), Arc::clone(store), 32);
    Server::start(state, ServerConfig { port: 0, ..config }).expect("bind ephemeral port")
}

/// Install a fault plan over the admin API; panics on a non-200 answer.
fn install_faults(addr: std::net::SocketAddr, spec: &str) {
    let body = format!(r#"{{"spec":{}}}"#, serde_json::to_string(&serde::Value::String(spec.into())).unwrap());
    let response = client::post_json(addr, "/admin/faults", &body, TIMEOUT).expect("admin reachable");
    assert_eq!(
        response.status,
        200,
        "installing {spec:?}: {}",
        String::from_utf8_lossy(&response.body)
    );
}

/// Clear the active fault plan over the admin API.
fn clear_faults(addr: std::net::SocketAddr) {
    let response =
        client::post_json(addr, "/admin/faults", r#"{"clear":true}"#, TIMEOUT).expect("admin");
    assert_eq!(response.status, 200);
}

/// Parse the `GET /admin/faults` status document.
fn faults_status(addr: std::net::SocketAddr) -> serde::Value {
    let response = client::get(addr, "/admin/faults", TIMEOUT).expect("admin reachable");
    assert_eq!(response.status, 200);
    serde_json::from_str(std::str::from_utf8(&response.body).unwrap()).unwrap()
}

/// `(occurrences, fired)` for one named point in the status document.
fn point_counts(status: &serde::Value, point: &str) -> (u64, u64) {
    let points = status
        .as_object()
        .and_then(|o| o.get("points"))
        .and_then(|p| p.as_array())
        .expect("points array");
    for row in points {
        let row = row.as_object().expect("point row");
        if row.get("point").and_then(|v| v.as_str()) == Some(point) {
            return (
                row.get("occurrences").and_then(|v| v.as_u64()).unwrap_or(0),
                row.get("fired").and_then(|v| v.as_u64()).unwrap_or(0),
            );
        }
    }
    (0, 0)
}

#[test]
fn faulted_keepalive_load_never_hangs_and_recovers_byte_identical() {
    let server = start_server(ServerConfig {
        threads: Some(2),
        shards: Some(2),
        keep_alive: true,
        ..Default::default()
    });
    let addr = server.addr();

    // Healthy baseline before any fault is installed.
    let baseline = client::get(addr, "/table1", TIMEOUT).expect("healthy /table1");
    assert_eq!(baseline.status, 200);
    let baseline_body = baseline.body;

    // Delays stretch computations in place; short-writes drip responses
    // out a byte at a time on some flush rounds. Neither is allowed to
    // change a single served byte.
    install_faults(addr, "seed=7;evolve.compute=delay:10@1in:4;conn.write=short-write@1in:3");

    let clients = 4usize;
    let per_client = 24usize;
    std::thread::scope(|scope| {
        for client_index in 0..clients {
            let baseline_body = &baseline_body;
            scope.spawn(move || {
                let mut conn = client::Connection::open(addr, TIMEOUT).expect("connect");
                for i in 0..per_client {
                    if i % 3 == 2 {
                        // Distinct seeds force real computations so the
                        // evolve.compute point actually accumulates
                        // occurrences under load.
                        let seed = 1000 + client_index * per_client + i;
                        let body = format!(
                            r#"{{"cuisine":"ITA","model":"NM","seed":{seed},"replicates":2}}"#
                        );
                        let response = conn
                            .post_json("/evolve", &body)
                            .expect("faulted evolve must still answer");
                        assert_eq!(
                            response.status, 200,
                            "client {client_index} slot {i}: {}",
                            String::from_utf8_lossy(&response.body)
                        );
                    } else {
                        let response = conn
                            .get("/table1")
                            .expect("faulted GET must still answer");
                        assert_eq!(response.status, 200, "client {client_index} slot {i}");
                        assert_eq!(
                            &response.body, baseline_body,
                            "client {client_index} slot {i}: short-writes must never \
                             corrupt or truncate the served bytes"
                        );
                    }
                }
            });
        }
    });

    // The plan genuinely fired under that load.
    let status = faults_status(addr);
    let total_fired = status
        .as_object()
        .and_then(|o| o.get("total_fired"))
        .and_then(|v| v.as_u64())
        .expect("total_fired");
    assert!(total_fired > 0, "fault plan installed but never fired: {status:?}");

    // Clearing the plan restores a fault-free, byte-identical server.
    clear_faults(addr);
    let recovered = client::get(addr, "/table1", TIMEOUT).expect("recovered /table1");
    assert_eq!(recovered.status, 200);
    assert_eq!(recovered.body, baseline_body, "recovery must be byte-identical");
    let status = faults_status(addr);
    assert!(
        matches!(status.as_object().and_then(|o| o.get("spec")), Some(serde::Value::Null)),
        "clear must drop the plan: {status:?}"
    );

    server.shutdown();
}

#[test]
fn lost_dispatch_job_becomes_a_504_within_the_deadline_budget() {
    let server = start_server(ServerConfig { threads: Some(2), ..Default::default() });
    let addr = server.addr();

    // The very first dispatched job is dropped before it runs: its flight
    // would never complete and, pre-deadline, every coalesced waiter
    // would hang forever. The request deadline converts that into a 504.
    install_faults(addr, "seed=1;pool.dispatch=fail@nth:1");

    let budget_ms = 400u64;
    let mut conn = client::Connection::open(addr, TIMEOUT).expect("connect");
    conn.set_deadline_ms(Some(budget_ms));
    let started = Instant::now();
    let response = conn
        .post_json("/evolve", r#"{"cuisine":"ITA","model":"NM","seed":7777,"replicates":2}"#)
        .expect("a lost job must answer, not hang");
    let elapsed = started.elapsed();

    assert_eq!(
        response.status,
        504,
        "expected deadline expiry, got: {}",
        String::from_utf8_lossy(&response.body)
    );
    let body = String::from_utf8_lossy(&response.body);
    assert!(
        body.contains(&format!("\"deadline_ms\":{budget_ms}")),
        "504 must echo the budget: {body}"
    );
    assert!(
        elapsed >= Duration::from_millis(300),
        "504 answered before the budget elapsed ({elapsed:?})"
    );
    assert!(
        elapsed < Duration::from_secs(10),
        "504 took far longer than budget + slack ({elapsed:?})"
    );

    // The drop was observed as a contained worker panic, and the expiry
    // was counted.
    let metrics = client::get(addr, "/metrics", TIMEOUT).expect("/metrics");
    let doc: serde::Value =
        serde_json::from_str(std::str::from_utf8(&metrics.body).unwrap()).unwrap();
    let counter = |key: &str| {
        doc.as_object()
            .and_then(|o| o.get(key))
            .and_then(|v| v.as_u64())
            .unwrap_or_else(|| panic!("metrics key {key} missing"))
    };
    assert!(counter("deadline_expired") >= 1, "deadline_expired must be counted");
    assert!(counter("worker_panics") >= 1, "the dropped job must be counted");
    assert!(counter("fault_firings") >= 1, "the firing must be counted");

    // With the plan cleared, a fresh computation (new cache key — the
    // dead flight still owns the old one) completes normally.
    clear_faults(addr);
    let healthy = conn
        .post_json("/evolve", r#"{"cuisine":"ITA","model":"NM","seed":7778,"replicates":2}"#)
        .expect("healthy evolve");
    assert_eq!(healthy.status, 200, "{}", String::from_utf8_lossy(&healthy.body));

    server.shutdown();
}

#[test]
fn same_fault_seed_yields_identical_firing_counts() {
    // Two independent servers, the same plan, the same sequential request
    // sequence: the compute-layer point must fire on exactly the same
    // occurrences (conn.* points are TCP-chunking-dependent and are
    // deliberately not part of this determinism contract).
    let run = || -> (Vec<u16>, (u64, u64)) {
        let server = start_server(ServerConfig { threads: Some(1), ..Default::default() });
        let addr = server.addr();
        install_faults(addr, "seed=42;evolve.compute=fail@1in:2");
        let mut conn = client::Connection::open(addr, TIMEOUT).expect("connect");
        let mut statuses = Vec::new();
        for seed in 1..=8u64 {
            let body =
                format!(r#"{{"cuisine":"ITA","model":"NM","seed":{seed},"replicates":2}}"#);
            let response = conn.post_json("/evolve", &body).expect("faulted evolve answers");
            statuses.push(response.status);
            if response.status != 200 {
                let text = String::from_utf8_lossy(&response.body);
                assert!(
                    text.contains("injected fault: evolve.compute"),
                    "contract 500 must name the injected fault: {text}"
                );
            }
        }
        let counts = point_counts(&faults_status(addr), "evolve.compute");
        server.shutdown();
        (statuses, counts)
    };

    let (statuses_a, counts_a) = run();
    let (statuses_b, counts_b) = run();

    assert_eq!(counts_a.0, 8, "eight computations, eight occurrences");
    assert!(counts_a.1 >= 1, "a 1-in-2 schedule over 8 occurrences must fire");
    assert!(counts_a.1 < 8, "a 1-in-2 schedule must not fire every time");
    assert_eq!(counts_a, counts_b, "same seed + same sequence => same counts");
    assert_eq!(statuses_a, statuses_b, "same seed + same sequence => same statuses");
}

#[test]
fn shutdown_mid_faulted_load_drains_cleanly() {
    let server = start_server(ServerConfig { threads: Some(2), ..Default::default() });
    let addr = server.addr();
    // Every computation is stretched so the drain genuinely overlaps
    // in-flight work.
    install_faults(addr, "seed=3;evolve.compute=delay:150");

    let handles: Vec<_> = (0..3)
        .map(|i| {
            std::thread::spawn(move || {
                let mut conn = client::Connection::open(addr, TIMEOUT).expect("connect");
                let evolve =
                    format!(r#"{{"cuisine":"ITA","model":"NM","seed":{},"replicates":2}}"#, 500 + i);
                conn.send("/table1", None).expect("send 1");
                conn.send("/evolve", Some(evolve.as_bytes())).expect("send 2");
                conn.send("/healthz", None).expect("send 3");
                for k in 0..3 {
                    let response = conn.recv().unwrap_or_else(|e| {
                        panic!("conn {i} response {k} reset during faulted drain: {e}")
                    });
                    assert_eq!(response.status, 200, "conn {i} response {k}");
                }
            })
        })
        .collect();

    // Let the batches reach the server, then drain while the delayed
    // computations are still in flight.
    std::thread::sleep(Duration::from_millis(100));
    server.shutdown();

    for handle in handles {
        handle.join().expect("faulted pipelined client");
    }
}
