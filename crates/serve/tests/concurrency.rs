//! Concurrency harness for the sharded keep-alive server: single-flight
//! `/evolve` coalescing, pipelined graceful drain, idle-timeout behavior,
//! and the determinism contract across shard counts × keep-alive modes.
//!
//! These tests pin the claims the throughput rewrite rides on: N identical
//! concurrent `/evolve` requests cost **one** computation (observed via
//! `/metrics`) and fan out byte-identical bodies; distinct seeds never
//! cross-contaminate; shutdown answers every pipelined request already
//! received with zero resets; an idle timeout closes quiet connections but
//! never active ones; and served bytes are invariant across `{1, 4}`
//! shards × keep-alive on/off.
//!
//! Shares the seed 11 / scale 0.02 fixture style of
//! `tests/server_integration.rs`.

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use cuisine_core::{Experiment, PipelineConfig};
use cuisine_evolution::{EnsembleConfig, EvaluationConfig, ModelKind};
use cuisine_serve::client;
use cuisine_serve::{AppState, Server, ServerConfig, SnapshotStore};
use cuisine_synth::SynthConfig;

const TIMEOUT: Duration = Duration::from_secs(30);

static FIXTURE: OnceLock<(Arc<Experiment>, Arc<SnapshotStore>)> = OnceLock::new();

fn fixture() -> &'static (Arc<Experiment>, Arc<SnapshotStore>) {
    FIXTURE.get_or_init(|| {
        let synth = SynthConfig { seed: 11, scale: 0.02, ..Default::default() };
        let experiment = Experiment::synthetic_with(&synth, PipelineConfig::default());
        let fig4 = EvaluationConfig {
            ensemble: EnsembleConfig { replicates: 2, seed: 7, threads: None },
            ..Default::default()
        };
        let store = SnapshotStore::build(
            &experiment,
            "concurrency-v1".into(),
            &[ModelKind::Null],
            &fig4,
        );
        (Arc::new(experiment), Arc::new(store))
    })
}

fn start_server(config: ServerConfig) -> Server {
    let (experiment, store) = fixture();
    let state = AppState::with_shared(Arc::clone(experiment), Arc::clone(store), 32);
    Server::start(state, ServerConfig { port: 0, ..config }).expect("bind ephemeral port")
}

/// Pull the named u64 counters out of a live `/metrics` document.
fn metrics_u64(addr: std::net::SocketAddr, keys: &[&str]) -> Vec<u64> {
    let raw = client::get(addr, "/metrics", TIMEOUT).expect("/metrics");
    assert_eq!(raw.status, 200);
    let doc: serde::Value =
        serde_json::from_str(std::str::from_utf8(&raw.body).unwrap()).unwrap();
    let object = doc.as_object().unwrap();
    keys.iter()
        .map(|key| {
            object
                .get(key)
                .and_then(|v| v.as_u64())
                .unwrap_or_else(|| panic!("metrics key {key} missing"))
        })
        .collect()
}

#[test]
fn identical_concurrent_evolves_share_one_computation() {
    let server = start_server(ServerConfig { threads: Some(2), ..Default::default() });
    let addr = server.addr();
    let body = r#"{"cuisine":"ITA","model":"CM-M","seed":7,"replicates":8}"#;

    // Sequential baseline from an independent server instance.
    let baseline_server = start_server(ServerConfig { threads: Some(1), ..Default::default() });
    let baseline = client::post_json(baseline_server.addr(), "/evolve", body, TIMEOUT).unwrap();
    assert_eq!(baseline.status, 200, "{}", String::from_utf8_lossy(&baseline.body));
    baseline_server.shutdown();

    let n = 8;
    let bodies: Vec<Vec<u8>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|_| {
                scope.spawn(move || {
                    let response = client::post_json(addr, "/evolve", body, TIMEOUT).unwrap();
                    assert_eq!(response.status, 200);
                    response.body
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });

    for (i, served) in bodies.iter().enumerate() {
        assert_eq!(
            served, &baseline.body,
            "concurrent response {i} diverged from the sequential baseline"
        );
    }

    // Exactly one underlying computation; everyone else either coalesced
    // onto the in-flight computation or hit the result cache behind it.
    let counts =
        metrics_u64(addr, &["evolve_computations", "coalesced_waiters", "evolve_cache_hits"]);
    assert_eq!(counts[0], 1, "identical concurrent requests must share one computation");
    assert_eq!(
        counts[1] + counts[2],
        (n - 1) as u64,
        "every non-leader must be accounted as a waiter or a cache hit"
    );

    server.shutdown();
}

#[test]
fn distinct_seeds_interleaved_do_not_cross_contaminate() {
    let server = start_server(ServerConfig { threads: Some(4), ..Default::default() });
    let addr = server.addr();
    let seeds = [40u64, 41, 42, 43];

    // Sequential baselines, one per seed, from an independent server.
    let baseline_server = start_server(ServerConfig { threads: Some(1), ..Default::default() });
    let baselines: Vec<Vec<u8>> = seeds
        .iter()
        .map(|seed| {
            let body =
                format!(r#"{{"cuisine":"ITA","model":"CM-M","seed":{seed},"replicates":4}}"#);
            let r = client::post_json(baseline_server.addr(), "/evolve", &body, TIMEOUT).unwrap();
            assert_eq!(r.status, 200);
            r.body
        })
        .collect();
    baseline_server.shutdown();

    // Two interleaved rounds per seed, all concurrent.
    let results: Vec<(usize, Vec<u8>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..seeds.len() * 2)
            .map(|slot| {
                let seed = seeds[slot % seeds.len()];
                scope.spawn(move || {
                    let body = format!(
                        r#"{{"cuisine":"ITA","model":"CM-M","seed":{seed},"replicates":4}}"#
                    );
                    let r = client::post_json(addr, "/evolve", &body, TIMEOUT).unwrap();
                    assert_eq!(r.status, 200);
                    (slot % seeds.len(), r.body)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });

    for (seed_index, served) in &results {
        assert_eq!(
            served, &baselines[*seed_index],
            "seed {} response diverged under interleaving",
            seeds[*seed_index]
        );
    }
    // The seeds genuinely differ from each other (CM-M is stochastic).
    assert!(
        baselines.windows(2).all(|w| w[0] != w[1]),
        "distinct seeds must produce distinct bodies"
    );

    // One computation per distinct seed, never more.
    let counts = metrics_u64(addr, &["evolve_computations"]);
    assert_eq!(counts[0], seeds.len() as u64);

    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_pipelined_requests_with_zero_resets() {
    let server = start_server(ServerConfig { threads: Some(2), ..Default::default() });
    let addr = server.addr();
    let (_, store) = fixture();
    let table1 = store.get("/table1").expect("snapshotted");

    // Four persistent connections, each pipelining GETs around a slow-ish
    // evolve, all written before shutdown lands.
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let table1 = Arc::clone(&table1);
            std::thread::spawn(move || {
                let mut conn = client::Connection::open(addr, TIMEOUT).expect("connect");
                let evolve =
                    format!(r#"{{"cuisine":"ITA","model":"NM","seed":{i},"replicates":8}}"#);
                conn.send("/table1", None).expect("send 1");
                conn.send("/evolve", Some(evolve.as_bytes())).expect("send 2");
                conn.send("/table1", None).expect("send 3");
                conn.send("/healthz", None).expect("send 4");
                let responses: Vec<_> = (0..4)
                    .map(|k| {
                        conn.recv().unwrap_or_else(|e| {
                            panic!("conn {i} response {k} reset during drain: {e}")
                        })
                    })
                    .collect();
                assert!(responses.iter().all(|r| r.status == 200), "conn {i}");
                assert_eq!(responses[0].body, *table1, "conn {i} table1 before evolve");
                assert_eq!(responses[2].body, *table1, "conn {i} table1 after evolve");
            })
        })
        .collect();

    // Let every batch reach the server, then shut down mid-flight.
    std::thread::sleep(Duration::from_millis(300));
    server.shutdown();

    for handle in handles {
        handle.join().expect("pipelined client");
    }
}

#[test]
fn idle_timeout_closes_quiet_connections_but_not_active_ones() {
    let server = start_server(ServerConfig {
        idle_timeout: Duration::from_millis(250),
        ..Default::default()
    });
    let addr = server.addr();

    let mut quiet = client::Connection::open(addr, TIMEOUT).expect("connect quiet");
    assert_eq!(quiet.get("/healthz").expect("warm-up").status, 200);

    // An active connection exchanging a request every ~50ms stays alive
    // well past the idle deadline...
    let mut active = client::Connection::open(addr, TIMEOUT).expect("connect active");
    for _ in 0..12 {
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(
            active.get("/healthz").expect("active connection stays open").status,
            200
        );
    }

    // ...while the quiet one was closed by the sweep: the next exchange
    // fails instead of hanging (the send may be buffered, the recv sees
    // the close).
    let outcome = quiet.roundtrip("/healthz", None);
    assert!(outcome.is_err(), "idle connection must be closed by the sweep");

    server.shutdown();
}

#[test]
fn artifacts_are_byte_identical_across_shards_and_keepalive_modes() {
    let (_, store) = fixture();
    let evolve_body = r#"{"cuisine":"ITA","model":"CM-R","seed":5,"replicates":3}"#;
    let paths = ["/table1", "/fig1", "/fig4", "/similarity/ingredient"];

    let mut reference: Option<Vec<Vec<u8>>> = None;
    for shards in [1usize, 4] {
        for keep_alive in [true, false] {
            let server = start_server(ServerConfig {
                shards: Some(shards),
                keep_alive,
                threads: Some(2),
                ..Default::default()
            });
            let addr = server.addr();

            let mut bodies: Vec<Vec<u8>> = Vec::new();
            for path in paths {
                let response = client::get(addr, path, TIMEOUT).unwrap();
                assert_eq!(response.status, 200, "{path} (shards {shards})");
                assert_eq!(
                    response.body,
                    **store.get(path).expect("snapshotted"),
                    "{path} diverged from the snapshot (shards {shards}, keep_alive {keep_alive})"
                );
                bodies.push(response.body);
            }
            let evolve = client::post_json(addr, "/evolve", evolve_body, TIMEOUT).unwrap();
            assert_eq!(evolve.status, 200);
            bodies.push(evolve.body);

            // Keep-alive servers must serve the same bytes over a reused
            // connection as over fresh ones.
            if keep_alive {
                let mut conn = client::Connection::open(addr, TIMEOUT).expect("connect");
                for (i, path) in paths.iter().enumerate() {
                    let reused = conn.get(path).expect("keep-alive GET");
                    assert_eq!(reused.status, 200);
                    assert_eq!(
                        reused.body, bodies[i],
                        "{path} diverged over a reused connection"
                    );
                }
            }

            match &reference {
                None => reference = Some(bodies),
                Some(expected) => assert_eq!(
                    expected, &bodies,
                    "bytes diverged at shards {shards}, keep_alive {keep_alive}"
                ),
            }
            server.shutdown();
        }
    }
}
