//! End-to-end tests over a live server on an ephemeral port.
//!
//! The headline contract: bytes served over HTTP are **identical** to what
//! the offline pipeline serializes for the same configuration — under
//! concurrency, across repeated requests, and across server pool sizes.
//! Graceful shutdown must complete every accepted request (the client
//! verifies `content-length`, so a reset surfaces as a transport error,
//! not a short body).
//!
//! One experiment + snapshot build (seed 11 / scale 0.02, matching
//! `tests/determinism.rs`) is shared by every test via
//! [`AppState::with_shared`].

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use cuisine_core::{Experiment, PipelineConfig};
use cuisine_evolution::{EnsembleConfig, EvaluationConfig, ModelKind};
use cuisine_serve::client;
use cuisine_serve::{AppState, Server, ServerConfig, SnapshotStore};
use cuisine_synth::SynthConfig;

const TIMEOUT: Duration = Duration::from_secs(30);

static FIXTURE: OnceLock<(Arc<Experiment>, Arc<SnapshotStore>)> = OnceLock::new();

fn fig4_config() -> EvaluationConfig {
    EvaluationConfig {
        ensemble: EnsembleConfig { replicates: 2, seed: 7, threads: None },
        ..Default::default()
    }
}

fn fixture() -> &'static (Arc<Experiment>, Arc<SnapshotStore>) {
    FIXTURE.get_or_init(|| {
        let synth = SynthConfig { seed: 11, scale: 0.02, ..Default::default() };
        let experiment = Experiment::synthetic_with(&synth, PipelineConfig::default());
        let store = SnapshotStore::build(
            &experiment,
            "integration-v1".into(),
            &[ModelKind::Null],
            &fig4_config(),
        );
        (Arc::new(experiment), Arc::new(store))
    })
}

fn start_server(config: ServerConfig) -> Server {
    let (experiment, store) = fixture();
    let state = AppState::with_shared(Arc::clone(experiment), Arc::clone(store), 32);
    Server::start(state, ServerConfig { port: 0, ..config }).expect("bind ephemeral port")
}

#[test]
fn eight_concurrent_clients_get_byte_identical_artifacts() {
    let server = start_server(ServerConfig { threads: Some(4), ..Default::default() });
    let addr = server.addr();
    let (experiment, store) = fixture();

    let paths = [
        "/table1",
        "/fig1",
        "/fig2",
        "/fig3/ingredient",
        "/fig3/category",
        "/similarity/ingredient",
        "/fig4",
        "/cuisines",
    ];

    std::thread::scope(|scope| {
        for client_index in 0..8 {
            scope.spawn(move || {
                // Each client walks every path, starting at its own offset.
                for step in 0..paths.len() {
                    let path = paths[(client_index + step) % paths.len()];
                    let response = client::get(addr, path, TIMEOUT)
                        .unwrap_or_else(|e| panic!("client {client_index} {path}: {e}"));
                    assert_eq!(response.status, 200, "{path}");
                    assert_eq!(
                        response.body,
                        **store.get(path).expect("snapshotted"),
                        "served bytes diverged from the snapshot for {path}"
                    );
                }
            });
        }
    });

    // Spot-check the snapshot itself against a fresh offline serialization
    // (the full family is covered by the snapshot unit tests).
    let offline = serde_json::to_string(&experiment.table1()).unwrap();
    assert_eq!(
        client::get(addr, "/table1", TIMEOUT).unwrap().body,
        offline.into_bytes(),
        "served /table1 diverged from the offline pipeline"
    );

    server.shutdown();
}

#[test]
fn evolve_is_deterministic_across_requests_and_pool_sizes() {
    let body = r#"{"cuisine":"ITA","model":"CM-M","seed":42,"replicates":3}"#;

    let single = start_server(ServerConfig { threads: Some(1), ..Default::default() });
    let wide = start_server(ServerConfig { threads: Some(4), ..Default::default() });

    let a = client::post_json(single.addr(), "/evolve", body, TIMEOUT).unwrap();
    let b = client::post_json(single.addr(), "/evolve", body, TIMEOUT).unwrap();
    let c = client::post_json(wide.addr(), "/evolve", body, TIMEOUT).unwrap();
    assert_eq!(a.status, 200, "{}", String::from_utf8_lossy(&a.body));
    assert_eq!(a.body, b.body, "same server, same seed: bodies must match");
    assert_eq!(a.body, c.body, "different pool size: bodies must match");

    // A different seed must actually change the stochastic models' output.
    let reseeded = r#"{"cuisine":"ITA","model":"CM-M","seed":43,"replicates":3}"#;
    let d = client::post_json(wide.addr(), "/evolve", reseeded, TIMEOUT).unwrap();
    assert_eq!(d.status, 200);
    assert_ne!(a.body, d.body, "seed is part of the contract");

    single.shutdown();
    wide.shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let server = start_server(ServerConfig {
        threads: Some(2),
        queue_capacity: 32,
        ..Default::default()
    });
    let addr = server.addr();

    // Six slow-ish requests across two workers: several will still be
    // queued or in flight when shutdown lands.
    let handles: Vec<_> = (0..6)
        .map(|i| {
            std::thread::spawn(move || {
                let body =
                    format!(r#"{{"cuisine":"ITA","model":"NM","seed":{i},"replicates":8}}"#);
                client::post_json(addr, "/evolve", &body, TIMEOUT)
            })
        })
        .collect();

    // Give every client time to connect and be accepted (the accept loop
    // polls at millisecond granularity), then shut down mid-flight.
    std::thread::sleep(Duration::from_millis(500));
    server.shutdown();

    for (i, handle) in handles.into_iter().enumerate() {
        let response = handle
            .join()
            .expect("client thread")
            .unwrap_or_else(|e| panic!("request {i} was dropped during drain: {e}"));
        assert_eq!(response.status, 200, "request {i}");
    }

    // The listener is gone after shutdown.
    assert!(client::get(addr, "/healthz", Duration::from_secs(1)).is_err());
}

#[test]
fn protocol_errors_are_served_as_json_statuses() {
    let server = start_server(ServerConfig::default());
    let addr = server.addr();

    assert_eq!(client::get(addr, "/no-such-endpoint", TIMEOUT).unwrap().status, 404);
    assert_eq!(client::get(addr, "/evolve", TIMEOUT).unwrap().status, 405);
    assert_eq!(
        client::post_json(addr, "/evolve", "{]", TIMEOUT).unwrap().status,
        400
    );
    assert_eq!(
        client::post_json(addr, "/evolve", r#"{"cuisine":"ITA"}"#, TIMEOUT).unwrap().status,
        422
    );

    // A malformed request line straight over the socket.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(TIMEOUT)).unwrap();
    stream.write_all(b"NONSENSE\r\n\r\n").unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let head = String::from_utf8_lossy(&raw);
    assert!(head.starts_with("HTTP/1.1 400"), "got: {head}");

    server.shutdown();
}

#[test]
fn healthz_and_metrics_reflect_live_state() {
    let server = start_server(ServerConfig::default());
    let addr = server.addr();

    let health = client::get(addr, "/healthz", TIMEOUT).unwrap();
    assert_eq!(health.status, 200);
    assert!(String::from_utf8_lossy(&health.body).contains("integration-v1"));

    // Two identical GETs: the second must be an LRU hit.
    let first = client::get(addr, "/table1?x=1&y=2", TIMEOUT).unwrap();
    let second = client::get(addr, "/table1/?y=2&x=1", TIMEOUT).unwrap();
    assert_eq!(first.body, second.body);

    let metrics = client::get(addr, "/metrics", TIMEOUT).unwrap();
    assert_eq!(metrics.status, 200);
    let doc: serde::Value =
        serde_json::from_str(std::str::from_utf8(&metrics.body).unwrap()).unwrap();
    let object = doc.as_object().unwrap();
    let cache = object.get("response_cache").unwrap().as_object().unwrap();
    assert_eq!(cache.get("hits").unwrap().as_u64(), Some(1));

    server.shutdown();
}
