//! Registry integration tests over a live server on an ephemeral port.
//!
//! The headline contract is the zero-downtime hot swap: re-registering a
//! corpus while keep-alive clients hammer scoped artifact GETs and
//! `POST /evolve` must produce zero transport errors and zero non-2xx
//! statuses (409 `Building` is the only other status the contract
//! permits, and with atomic swap-in-place it never actually fires), with
//! every body byte-identical to an offline `SnapshotStore` build of the
//! registered spec — whichever epoch served it. Registering and retiring
//! a second corpus must never perturb default-corpus bytes, and N
//! concurrent identical registrations must coalesce onto one build.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use cuisine_core::{Experiment, PipelineConfig};
use cuisine_data::{Corpus, CuisineId};
use cuisine_evolution::{EnsembleConfig, EvaluationConfig, ModelKind};
use cuisine_lexicon::Lexicon;
use cuisine_serve::client;
use cuisine_serve::{
    AppState, CorpusSpec, RegistryConfig, Server, ServerConfig, SnapshotStore,
};
use cuisine_synth::{generate_corpus, SynthConfig};

const TIMEOUT: Duration = Duration::from_secs(30);
const BUILD_TIMEOUT: Duration = Duration::from_secs(600);
const EVOLVE_BODY: &str = r#"{"cuisine":"ITA","model":"NM","seed":5,"replicates":2}"#;

static FIXTURE: OnceLock<(Arc<Experiment>, Arc<SnapshotStore>)> = OnceLock::new();

fn fig4_config() -> EvaluationConfig {
    // Must match `BuildOptions::minimal()` — registered corpora build
    // with the registry's options, and the offline comparison builds
    // here must be configured identically.
    EvaluationConfig {
        ensemble: EnsembleConfig { replicates: 2, seed: 7, threads: None },
        ..Default::default()
    }
}

fn default_spec() -> CorpusSpec {
    CorpusSpec {
        seed: 11,
        scale: 0.02,
        miner: cuisine_mining::Miner::FpGrowth,
        cuisines: None,
    }
}

fn fixture() -> &'static (Arc<Experiment>, Arc<SnapshotStore>) {
    FIXTURE.get_or_init(|| {
        let synth = SynthConfig { seed: 11, scale: 0.02, ..Default::default() };
        let experiment = Experiment::synthetic_with(&synth, PipelineConfig::default());
        let store = SnapshotStore::build(
            &experiment,
            "registry-int-v1".into(),
            &[ModelKind::Null],
            &fig4_config(),
        );
        (Arc::new(experiment), Arc::new(store))
    })
}

fn start_server(config: ServerConfig) -> Server {
    let (experiment, store) = fixture();
    let state = AppState::with_registry(
        Arc::clone(experiment),
        Arc::clone(store),
        32,
        RegistryConfig { default_spec: Some(default_spec()), ..Default::default() },
    );
    Server::start(state, ServerConfig { port: 0, ..config }).expect("bind ephemeral port")
}

/// Offline build of the registered subset spec — exactly what the
/// registry's background build produces (snapshot version = corpus key,
/// so bodies are stable across epochs).
fn offline_subset_store(codes: &[&str], key: &str) -> SnapshotStore {
    let synth = SynthConfig { seed: 11, scale: 0.02, ..Default::default() };
    let subset: Vec<CuisineId> =
        codes.iter().map(|c| c.parse().expect("cuisine code")).collect();
    let full = generate_corpus(&synth, Lexicon::standard());
    let corpus = Corpus::new(
        full.recipes()
            .iter()
            .filter(|recipe| subset.contains(&recipe.cuisine))
            .cloned()
            .collect(),
    );
    let experiment = Experiment::with_config(corpus, PipelineConfig::default());
    SnapshotStore::build(&experiment, key.to_string(), &[ModelKind::Null], &fig4_config())
}

fn register(addr: std::net::SocketAddr, body: &str) -> client::ClientResponse {
    client::post_json(addr, "/admin/corpora", body, TIMEOUT).expect("register request")
}

#[test]
fn hot_swap_under_load_serves_byte_identical_bodies() {
    let server = start_server(ServerConfig { threads: Some(4), ..Default::default() });
    let addr = server.addr();
    let (_, default_store) = fixture();

    // Register the ITA-subset corpus and wait for its first epoch.
    let key = "seed11-scale0.02-fpgrowth-ITA";
    let accepted = register(addr, r#"{"cuisines":["ITA"]}"#);
    assert_eq!(accepted.status, 202, "{}", String::from_utf8_lossy(&accepted.body));
    assert!(String::from_utf8_lossy(&accepted.body).contains(key));
    assert!(
        server.state().registry.wait_ready(key, BUILD_TIMEOUT),
        "registered corpus never became ready"
    );

    let offline = offline_subset_store(&["ITA"], key);

    // The GET mix: scoped reads against the registered corpus interleaved
    // with default-corpus reads (whose bytes must never move).
    let expectations: Vec<(String, Vec<u8>)> = vec![
        (
            format!("/table1?corpus={key}"),
            offline.get("/table1").expect("offline table1").to_vec(),
        ),
        (
            format!("/fig4/ITA?corpus={key}"),
            offline.get("/fig4/ITA").expect("offline fig4").to_vec(),
        ),
        (
            format!("/cuisines?corpus={key}"),
            offline.get("/cuisines").expect("offline cuisines").to_vec(),
        ),
        ("/table1".to_string(), default_store.get("/table1").expect("table1").to_vec()),
        ("/fig1".to_string(), default_store.get("/fig1").expect("fig1").to_vec()),
    ];
    // Evolve bodies are deterministic per corpus across epochs: capture
    // the expected bytes once, before the swaps start.
    let evolve_targets: Vec<(String, Vec<u8>)> = ["/evolve".to_string(), format!("/evolve?corpus={key}")]
        .into_iter()
        .map(|path| {
            let response =
                client::post_json(addr, &path, EVOLVE_BODY, TIMEOUT).expect("evolve warmup");
            assert_eq!(response.status, 200, "{path}");
            (path, response.body)
        })
        .collect();

    let stop = AtomicBool::new(false);
    let bad_status = AtomicUsize::new(0);
    let transport_errors = AtomicUsize::new(0);
    let served = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for client_index in 0..8usize {
            let (expectations, evolve_targets) = (&expectations, &evolve_targets);
            let (stop, bad_status, transport_errors, served) =
                (&stop, &bad_status, &transport_errors, &served);
            scope.spawn(move || {
                let mut conn = client::Connection::open(addr, TIMEOUT).ok();
                let mut step = client_index;
                while !stop.load(Ordering::Relaxed) {
                    let live = match conn.as_mut() {
                        Some(live) => live,
                        None => match client::Connection::open(addr, TIMEOUT) {
                            Ok(fresh) => conn.insert(fresh),
                            Err(_) => {
                                transport_errors.fetch_add(1, Ordering::Relaxed);
                                continue;
                            }
                        },
                    };
                    // Every 6th slot POSTs /evolve; the rest walk the GETs.
                    let outcome = if step % 6 == 5 {
                        let (path, expected) = &evolve_targets[step % evolve_targets.len()];
                        live.post_json(path, EVOLVE_BODY).map(|r| (r, expected))
                    } else {
                        let (path, expected) = &expectations[step % expectations.len()];
                        live.get(path).map(|r| (r, expected))
                    };
                    match outcome {
                        Err(_) => {
                            transport_errors.fetch_add(1, Ordering::Relaxed);
                            conn = None;
                        }
                        Ok((response, expected)) => {
                            served.fetch_add(1, Ordering::Relaxed);
                            // The contract: nothing but 2xx (409 Building is
                            // tolerated by the ISSUE but atomic swap-in-place
                            // never exposes it) and byte-exact bodies.
                            if response.status != 200 || response.body != *expected {
                                bad_status.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    step += 1;
                }
            });
        }

        // Under sustained load: re-register the same spec twice. Each
        // round rebuilds in the background and atomically swaps the new
        // epoch in; readers never see a gap.
        for round in 0..2 {
            let accepted = register(addr, r#"{"cuisines":["ITA"]}"#);
            assert_eq!(accepted.status, 202, "round {round}");
            assert!(
                server.state().registry.wait_ready(key, BUILD_TIMEOUT),
                "rebuild round {round} never became ready"
            );
        }
        stop.store(true, Ordering::Relaxed);
    });

    assert_eq!(transport_errors.load(Ordering::Relaxed), 0, "connection resets under swap");
    assert_eq!(bad_status.load(Ordering::Relaxed), 0, "non-200 or diverging body under swap");
    assert!(served.load(Ordering::Relaxed) > 100, "load loop barely ran");

    // The swaps really happened (initial register + 2 rebuilds).
    let stats = server.state().registry.stats();
    assert_eq!(stats.builds, 3);
    assert_eq!(stats.swaps, 2);

    server.shutdown();
}

#[test]
fn concurrent_registrations_coalesce_and_retire_leaves_default_untouched() {
    let server = start_server(ServerConfig::default());
    let addr = server.addr();
    let (_, default_store) = fixture();
    let baseline = client::get(addr, "/table1", TIMEOUT).expect("default read");
    assert_eq!(baseline.status, 200);
    assert_eq!(baseline.body, **default_store.get("/table1").expect("table1"));

    // Occupy the single build worker so the next key's build stays queued
    // while the concurrent registrations land.
    let occupied = register(addr, r#"{"cuisines":["FRA"]}"#);
    assert_eq!(occupied.status, 202);

    // 8 concurrent identical registrations: exactly one build, 7 coalesce.
    let key = "seed11-scale0.02-fpgrowth-FRA_ITA";
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| scope.spawn(move || register(addr, r#"{"cuisines":["ITA","FRA"]}"#)))
            .collect();
        for handle in handles {
            let response = handle.join().expect("registration thread");
            assert_eq!(response.status, 202, "{}", String::from_utf8_lossy(&response.body));
            assert!(String::from_utf8_lossy(&response.body).contains(key));
        }
    });

    // While still building, scoped reads answer 409 with a retry hint.
    let building = client::get(addr, &format!("/table1?corpus={key}"), TIMEOUT)
        .expect("busy read");
    assert_eq!(building.status, 409, "{}", String::from_utf8_lossy(&building.body));
    let busy: serde::Value =
        serde_json::from_str(std::str::from_utf8(&building.body).expect("utf8"))
            .expect("busy body is JSON");
    let retry = busy
        .as_object()
        .and_then(|o| o.get("retry_after_ms"))
        .and_then(serde::Value::as_u64)
        .expect("retry_after_ms hint");
    assert!(retry >= 100);

    assert!(server.state().registry.wait_ready(key, BUILD_TIMEOUT));
    let ready = client::get(addr, &format!("/table1?corpus={key}"), TIMEOUT).expect("ready read");
    assert_eq!(ready.status, 200);

    // The /metrics counters pin the coalescing: FRA + FRA_ITA = 2 builds
    // for 9 registrations.
    let metrics = client::get(addr, "/metrics", TIMEOUT).expect("metrics");
    let doc: serde::Value =
        serde_json::from_str(std::str::from_utf8(&metrics.body).expect("utf8")).expect("json");
    let object = doc.as_object().expect("metrics object");
    let counter = |name: &str| object.get(name).and_then(serde::Value::as_u64);
    assert_eq!(counter("registry_builds"), Some(2));
    assert_eq!(counter("registry_coalesced_registrations"), Some(7));

    // Retire the coalesced corpus; the default corpus's bytes never move.
    let retired =
        client::delete(addr, &format!("/admin/corpora/{key}"), TIMEOUT).expect("retire");
    assert_eq!(retired.status, 200);
    let gone = client::get(addr, &format!("/table1?corpus={key}"), TIMEOUT).expect("gone read");
    assert_eq!(gone.status, 404);
    let after = client::get(addr, "/table1", TIMEOUT).expect("default read after retire");
    assert_eq!(after.status, 200);
    assert_eq!(
        after.body, baseline.body,
        "retiring a second corpus perturbed default-corpus bytes"
    );

    server.shutdown();
}
