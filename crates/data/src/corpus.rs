//! The indexed recipe corpus: recipes grouped by cuisine with precomputed
//! ingredient-usage statistics.

use serde::{Deserialize, Serialize};

use cuisine_lexicon::IngredientId;

use crate::cuisine::{CuisineId, CUISINE_COUNT};
use crate::recipe::{Recipe, RecipeId};

/// An immutable, indexed collection of recipes.
///
/// Construction computes, per cuisine: the member recipe ids, the
/// ingredient-usage counts `n_i^ς` (number of recipes containing ingredient
/// `i` — the numerator of Eq. 1), and the recipe-size list. All queries are
/// then O(1) or a slice borrow.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Corpus {
    recipes: Vec<Recipe>,
    by_cuisine: Vec<Vec<RecipeId>>,
    /// usage[cuisine][ingredient] = number of recipes in `cuisine`
    /// containing `ingredient`. Rows sized to the largest id present.
    usage: Vec<Vec<u32>>,
}

impl Corpus {
    /// Build a corpus from recipes.
    pub fn new(recipes: Vec<Recipe>) -> Self {
        let max_id = recipes
            .iter()
            .flat_map(|r| r.ingredients().iter())
            .map(|id| id.index())
            .max()
            .map_or(0, |m| m + 1);
        let mut by_cuisine: Vec<Vec<RecipeId>> = vec![Vec::new(); CUISINE_COUNT];
        let mut usage: Vec<Vec<u32>> = vec![vec![0u32; max_id]; CUISINE_COUNT];
        for (i, r) in recipes.iter().enumerate() {
            let c = r.cuisine.index();
            assert!(c < CUISINE_COUNT, "recipe with out-of-range cuisine id {c}");
            by_cuisine[c].push(RecipeId(i as u32));
            for ing in r.ingredients() {
                usage[c][ing.index()] += 1;
            }
        }
        Corpus { recipes, by_cuisine, usage }
    }

    /// Total number of recipes.
    pub fn len(&self) -> usize {
        self.recipes.len()
    }

    /// True when the corpus holds no recipes.
    pub fn is_empty(&self) -> bool {
        self.recipes.is_empty()
    }

    /// All recipes, in id order.
    pub fn recipes(&self) -> &[Recipe] {
        &self.recipes
    }

    /// A recipe by id.
    ///
    /// # Panics
    /// Panics for an id not in this corpus.
    pub fn recipe(&self, id: RecipeId) -> &Recipe {
        &self.recipes[id.index()]
    }

    /// Recipe ids belonging to a cuisine.
    pub fn recipe_ids_in(&self, cuisine: CuisineId) -> &[RecipeId] {
        &self.by_cuisine[cuisine.index()]
    }

    /// Iterate over the recipes of a cuisine.
    pub fn recipes_in(&self, cuisine: CuisineId) -> impl Iterator<Item = &Recipe> + '_ {
        self.by_cuisine[cuisine.index()].iter().map(|&id| self.recipe(id))
    }

    /// `N_ς`: number of recipes in a cuisine.
    pub fn recipe_count(&self, cuisine: CuisineId) -> usize {
        self.by_cuisine[cuisine.index()].len()
    }

    /// `n_i^ς`: number of recipes in `cuisine` containing `ingredient`.
    pub fn usage(&self, cuisine: CuisineId, ingredient: IngredientId) -> u32 {
        self.usage[cuisine.index()]
            .get(ingredient.index())
            .copied()
            .unwrap_or(0)
    }

    /// Total usage of an ingredient across all cuisines
    /// (`Σ_c n_i^c`, the second numerator of Eq. 1).
    pub fn total_usage(&self, ingredient: IngredientId) -> u64 {
        self.usage
            .iter()
            .map(|row| row.get(ingredient.index()).copied().unwrap_or(0) as u64)
            .sum()
    }

    /// Ingredient ids used at least once in a cuisine, ascending.
    pub fn ingredients_in(&self, cuisine: CuisineId) -> Vec<IngredientId> {
        self.usage[cuisine.index()]
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, _)| IngredientId(i as u16))
            .collect()
    }

    /// Number of unique ingredients used in a cuisine (the Table-I
    /// "Ingredients" column).
    pub fn unique_ingredient_count(&self, cuisine: CuisineId) -> usize {
        self.usage[cuisine.index()].iter().filter(|&&c| c > 0).count()
    }

    /// Ingredient ids used at least once anywhere, ascending.
    pub fn all_ingredients(&self) -> Vec<IngredientId> {
        let width = self.usage.first().map_or(0, |row| row.len());
        (0..width)
            .filter(|&i| self.usage.iter().any(|row| row[i] > 0))
            .map(|i| IngredientId(i as u16))
            .collect()
    }

    /// Recipe sizes of a cuisine, in recipe-id order.
    pub fn sizes_in(&self, cuisine: CuisineId) -> Vec<usize> {
        self.recipes_in(cuisine).map(|r| r.size()).collect()
    }

    /// Mean recipe size of a cuisine (`s̄` of Algorithm 1).
    /// Returns `None` for a cuisine with no recipes.
    pub fn mean_size_in(&self, cuisine: CuisineId) -> Option<f64> {
        let n = self.recipe_count(cuisine);
        if n == 0 {
            return None;
        }
        let total: usize = self.recipes_in(cuisine).map(|r| r.size()).sum();
        Some(total as f64 / n as f64)
    }

    /// φ of Algorithm 1 for a cuisine: unique ingredients / recipes.
    /// Returns `None` for a cuisine with no recipes.
    pub fn phi(&self, cuisine: CuisineId) -> Option<f64> {
        let n = self.recipe_count(cuisine);
        if n == 0 {
            return None;
        }
        Some(self.unique_ingredient_count(cuisine) as f64 / n as f64)
    }

    /// Cuisines that actually have recipes in this corpus.
    pub fn populated_cuisines(&self) -> Vec<CuisineId> {
        CuisineId::all().filter(|&c| self.recipe_count(c) > 0).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u16) -> IngredientId {
        IngredientId(n)
    }

    fn sample_corpus() -> Corpus {
        Corpus::new(vec![
            Recipe::new(CuisineId(0), vec![id(1), id(2), id(3)]),
            Recipe::new(CuisineId(0), vec![id(1), id(4)]),
            Recipe::new(CuisineId(1), vec![id(2), id(5), id(6), id(7)]),
        ])
    }

    #[test]
    fn counts_and_lengths() {
        let c = sample_corpus();
        assert_eq!(c.len(), 3);
        assert_eq!(c.recipe_count(CuisineId(0)), 2);
        assert_eq!(c.recipe_count(CuisineId(1)), 1);
        assert_eq!(c.recipe_count(CuisineId(2)), 0);
    }

    #[test]
    fn usage_counts_recipes_not_occurrences() {
        let c = sample_corpus();
        assert_eq!(c.usage(CuisineId(0), id(1)), 2);
        assert_eq!(c.usage(CuisineId(0), id(2)), 1);
        assert_eq!(c.usage(CuisineId(0), id(5)), 0);
        assert_eq!(c.usage(CuisineId(1), id(2)), 1);
        assert_eq!(c.usage(CuisineId(0), id(10_000)), 0, "out-of-range id");
    }

    #[test]
    fn total_usage_sums_cuisines() {
        let c = sample_corpus();
        assert_eq!(c.total_usage(id(2)), 2);
        assert_eq!(c.total_usage(id(1)), 2);
        assert_eq!(c.total_usage(id(7)), 1);
    }

    #[test]
    fn unique_ingredient_counts() {
        let c = sample_corpus();
        assert_eq!(c.unique_ingredient_count(CuisineId(0)), 4);
        assert_eq!(c.unique_ingredient_count(CuisineId(1)), 4);
        assert_eq!(c.unique_ingredient_count(CuisineId(3)), 0);
        assert_eq!(c.all_ingredients().len(), 7);
    }

    #[test]
    fn ingredients_in_is_sorted_and_complete() {
        let c = sample_corpus();
        assert_eq!(c.ingredients_in(CuisineId(0)), vec![id(1), id(2), id(3), id(4)]);
    }

    #[test]
    fn mean_size_and_phi() {
        let c = sample_corpus();
        assert_eq!(c.mean_size_in(CuisineId(0)), Some(2.5));
        assert_eq!(c.phi(CuisineId(0)), Some(4.0 / 2.0));
        assert_eq!(c.mean_size_in(CuisineId(9)), None);
        assert_eq!(c.phi(CuisineId(9)), None);
    }

    #[test]
    fn populated_cuisines_listed() {
        let c = sample_corpus();
        assert_eq!(c.populated_cuisines(), vec![CuisineId(0), CuisineId(1)]);
    }

    #[test]
    fn empty_corpus_is_sane() {
        let c = Corpus::new(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.all_ingredients().len(), 0);
        assert_eq!(c.recipe_count(CuisineId(0)), 0);
        assert_eq!(c.total_usage(id(3)), 0);
    }

    #[test]
    #[should_panic(expected = "out-of-range cuisine")]
    fn rejects_invalid_cuisine() {
        let _ = Corpus::new(vec![Recipe::new(CuisineId(99), vec![id(1)])]);
    }
}
