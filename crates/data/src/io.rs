//! Corpus serialization: JSON-lines and a compact TSV format.
//!
//! JSONL is the interchange format (one JSON recipe object per line,
//! self-describing, diff-friendly); TSV is the compact format for large
//! corpora (`<cuisine-code>\t<ing>,<ing>,...` with canonical names).

use std::io::{self, BufRead, Write};

use serde::{Deserialize, Serialize};

use cuisine_lexicon::Lexicon;

use crate::corpus::Corpus;
use crate::cuisine::CuisineId;
use crate::recipe::Recipe;

/// Wire form of a recipe in the JSONL format: cuisine code plus canonical
/// ingredient names.
#[derive(Debug, Serialize, Deserialize)]
struct RecipeRecord {
    cuisine: String,
    ingredients: Vec<String>,
}

/// Errors arising while reading a corpus.
#[derive(Debug)]
pub enum CorpusReadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed JSON on the given 1-based line.
    Json {
        /// 1-based line number.
        line: usize,
        /// Underlying JSON parse error.
        source: serde_json::Error,
    },
    /// Unknown cuisine code on the given 1-based line.
    UnknownCuisine {
        /// 1-based line number.
        line: usize,
        /// The unrecognized cuisine code.
        code: String,
    },
    /// Ingredient mention that the lexicon cannot resolve.
    UnknownIngredient {
        /// 1-based line number.
        line: usize,
        /// The unresolvable mention.
        mention: String,
    },
    /// A TSV line without the expected tab separator.
    MalformedLine {
        /// 1-based line number.
        line: usize,
    },
}

impl std::fmt::Display for CorpusReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorpusReadError::Io(e) => write!(f, "I/O error: {e}"),
            CorpusReadError::Json { line, source } => {
                write!(f, "line {line}: malformed JSON: {source}")
            }
            CorpusReadError::UnknownCuisine { line, code } => {
                write!(f, "line {line}: unknown cuisine code {code:?}")
            }
            CorpusReadError::UnknownIngredient { line, mention } => {
                write!(f, "line {line}: unresolvable ingredient {mention:?}")
            }
            CorpusReadError::MalformedLine { line } => {
                write!(f, "line {line}: expected '<cuisine>\\t<ingredients>'")
            }
        }
    }
}

impl std::error::Error for CorpusReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CorpusReadError::Io(e) => Some(e),
            CorpusReadError::Json { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for CorpusReadError {
    fn from(e: io::Error) -> Self {
        CorpusReadError::Io(e)
    }
}

/// How to treat ingredient mentions the lexicon cannot resolve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnknownIngredientPolicy {
    /// Drop the mention (the paper's behaviour for unmapped mentions).
    Skip,
    /// Fail the read with [`CorpusReadError::UnknownIngredient`].
    Error,
}

/// Write a corpus as JSON lines.
pub fn write_jsonl<W: Write>(corpus: &Corpus, lexicon: &Lexicon, mut w: W) -> io::Result<()> {
    for r in corpus.recipes() {
        let record = RecipeRecord {
            cuisine: r.cuisine.code().to_string(),
            ingredients: r
                .ingredients()
                .iter()
                .map(|&id| lexicon.name(id).to_string())
                .collect(),
        };
        serde_json::to_writer(&mut w, &record)?;
        w.write_all(b"\n")?;
    }
    Ok(())
}

/// Read a corpus from JSON lines. Blank lines are skipped.
pub fn read_jsonl<R: BufRead>(
    r: R,
    lexicon: &Lexicon,
    policy: UnknownIngredientPolicy,
) -> Result<Corpus, CorpusReadError> {
    let mut recipes = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        let lineno = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let record: RecipeRecord = serde_json::from_str(&line)
            .map_err(|source| CorpusReadError::Json { line: lineno, source })?;
        recipes.push(record_to_recipe(&record, lineno, lexicon, policy)?);
    }
    Ok(Corpus::new(recipes))
}

/// Write a corpus as TSV: `<code>\t<name>,<name>,...`.
pub fn write_tsv<W: Write>(corpus: &Corpus, lexicon: &Lexicon, mut w: W) -> io::Result<()> {
    for r in corpus.recipes() {
        let names: Vec<&str> = r.ingredients().iter().map(|&id| lexicon.name(id)).collect();
        writeln!(w, "{}\t{}", r.cuisine.code(), names.join(","))?;
    }
    Ok(())
}

/// Read a corpus from the TSV format. Blank lines and `#` comments are
/// skipped.
pub fn read_tsv<R: BufRead>(
    r: R,
    lexicon: &Lexicon,
    policy: UnknownIngredientPolicy,
) -> Result<Corpus, CorpusReadError> {
    let mut recipes = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        let lineno = i + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let (code, rest) = trimmed
            .split_once('\t')
            .ok_or(CorpusReadError::MalformedLine { line: lineno })?;
        let record = RecipeRecord {
            cuisine: code.to_string(),
            ingredients: rest.split(',').map(|s| s.trim().to_string()).collect(),
        };
        recipes.push(record_to_recipe(&record, lineno, lexicon, policy)?);
    }
    Ok(Corpus::new(recipes))
}

fn record_to_recipe(
    record: &RecipeRecord,
    lineno: usize,
    lexicon: &Lexicon,
    policy: UnknownIngredientPolicy,
) -> Result<Recipe, CorpusReadError> {
    let cuisine: CuisineId = record.cuisine.parse().map_err(|_| {
        CorpusReadError::UnknownCuisine { line: lineno, code: record.cuisine.clone() }
    })?;
    let mut ids = Vec::with_capacity(record.ingredients.len());
    for mention in &record.ingredients {
        match lexicon.resolve(mention) {
            Some(id) => ids.push(id),
            None => match policy {
                UnknownIngredientPolicy::Skip => {}
                UnknownIngredientPolicy::Error => {
                    return Err(CorpusReadError::UnknownIngredient {
                        line: lineno,
                        mention: mention.clone(),
                    })
                }
            },
        }
    }
    Ok(Recipe::new(cuisine, ids))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuisine_lexicon::IngredientId;

    fn small_corpus(lex: &Lexicon) -> Corpus {
        let ids = |names: &[&str]| -> Vec<IngredientId> {
            names.iter().map(|n| lex.resolve(n).unwrap()).collect()
        };
        Corpus::new(vec![
            Recipe::new("ITA".parse().unwrap(), ids(&["Olive", "Garlic", "Tomato", "Basil"])),
            Recipe::new("JPN".parse().unwrap(), ids(&["Soybean Sauce", "Ginger", "Sake"])),
        ])
    }

    #[test]
    fn jsonl_roundtrip_preserves_corpus() {
        let lex = Lexicon::standard();
        let corpus = small_corpus(lex);
        let mut buf = Vec::new();
        write_jsonl(&corpus, lex, &mut buf).unwrap();
        let back = read_jsonl(buf.as_slice(), lex, UnknownIngredientPolicy::Error).unwrap();
        assert_eq!(back.len(), corpus.len());
        for (a, b) in corpus.recipes().iter().zip(back.recipes()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn tsv_roundtrip_preserves_corpus() {
        let lex = Lexicon::standard();
        let corpus = small_corpus(lex);
        let mut buf = Vec::new();
        write_tsv(&corpus, lex, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("ITA\t"), "{text}");
        let back = read_tsv(buf.as_slice(), lex, UnknownIngredientPolicy::Error).unwrap();
        assert_eq!(back.len(), 2);
        for (a, b) in corpus.recipes().iter().zip(back.recipes()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn read_jsonl_skips_blank_lines() {
        let lex = Lexicon::standard();
        let input = "\n{\"cuisine\":\"ITA\",\"ingredients\":[\"Olive\"]}\n\n";
        let c = read_jsonl(input.as_bytes(), lex, UnknownIngredientPolicy::Error).unwrap();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn read_tsv_skips_comments() {
        let lex = Lexicon::standard();
        let input = "# comment\nITA\tOlive,Garlic\n";
        let c = read_tsv(input.as_bytes(), lex, UnknownIngredientPolicy::Error).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c.recipes()[0].size(), 2);
    }

    #[test]
    fn unknown_cuisine_is_reported_with_line() {
        let lex = Lexicon::standard();
        let input = "{\"cuisine\":\"XYZ\",\"ingredients\":[\"Olive\"]}";
        let err = read_jsonl(input.as_bytes(), lex, UnknownIngredientPolicy::Skip).unwrap_err();
        match err {
            CorpusReadError::UnknownCuisine { line, code } => {
                assert_eq!(line, 1);
                assert_eq!(code, "XYZ");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unknown_ingredient_policy_skip_vs_error() {
        let lex = Lexicon::standard();
        let input = "ITA\tOlive,unobtainium\n";
        let ok = read_tsv(input.as_bytes(), lex, UnknownIngredientPolicy::Skip).unwrap();
        assert_eq!(ok.recipes()[0].size(), 1);
        let err = read_tsv(input.as_bytes(), lex, UnknownIngredientPolicy::Error).unwrap_err();
        assert!(matches!(err, CorpusReadError::UnknownIngredient { line: 1, .. }));
    }

    #[test]
    fn malformed_json_and_tsv_are_reported() {
        let lex = Lexicon::standard();
        let err =
            read_jsonl("not json".as_bytes(), lex, UnknownIngredientPolicy::Skip).unwrap_err();
        assert!(matches!(err, CorpusReadError::Json { line: 1, .. }));
        let err =
            read_tsv("no-tab-here".as_bytes(), lex, UnknownIngredientPolicy::Skip).unwrap_err();
        assert!(matches!(err, CorpusReadError::MalformedLine { line: 1 }));
    }
}
