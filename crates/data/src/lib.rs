//! # cuisine-data
//!
//! Data substrate of the cuisine-evolution workspace: the recipe data
//! model, the registry of the paper's 25 world cuisines with their Table-I
//! reference statistics, an indexed corpus store, corpus I/O (JSONL / TSV),
//! and corpus validation.
//!
//! ```
//! use cuisine_data::{Corpus, CuisineId, Recipe};
//! use cuisine_lexicon::Lexicon;
//!
//! let lex = Lexicon::standard();
//! let ita: CuisineId = "ITA".parse().unwrap();
//! let (recipe, unresolved) =
//!     Recipe::from_mentions(ita, ["olive oil", "garlic", "tomatoes", "basil"], lex);
//! assert!(unresolved.is_empty());
//! let corpus = Corpus::new(vec![recipe]);
//! assert_eq!(corpus.recipe_count(ita), 1);
//! ```

#![warn(missing_docs)]

pub mod corpus;
pub mod cuisine;
pub mod io;
pub mod recipe;
pub mod source;
pub mod transform;
pub mod validate;

pub use corpus::Corpus;
pub use cuisine::{Cuisine, CuisineId, ParseCuisineError, CUISINES, CUISINE_COUNT};
pub use recipe::{Recipe, RecipeId};
pub use source::Source;
