//! The recipe data model.
//!
//! Throughout the paper a recipe is treated as a *set* of standardized
//! ingredients annotated with a cuisine; cooking procedure and quantities
//! play no role in the analysis. [`Recipe`] enforces the set property by
//! storing a sorted, deduplicated ingredient list.

use serde::{Deserialize, Serialize};

use cuisine_lexicon::{Category, IngredientId, Lexicon};

use crate::cuisine::CuisineId;

/// Identifier of a recipe within a corpus.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct RecipeId(pub u32);

impl RecipeId {
    /// The id as a dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A recipe: a cuisine annotation plus a set of standardized ingredients.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Recipe {
    /// The cuisine (region) this recipe belongs to.
    pub cuisine: CuisineId,
    /// Sorted, deduplicated ingredient ids.
    ingredients: Vec<IngredientId>,
}

impl Recipe {
    /// Build a recipe from ingredient ids; duplicates are removed and the
    /// list is sorted, enforcing the set property.
    pub fn new(cuisine: CuisineId, mut ingredients: Vec<IngredientId>) -> Self {
        ingredients.sort_unstable();
        ingredients.dedup();
        Recipe { cuisine, ingredients }
    }

    /// Build a recipe by resolving raw ingredient mentions through the
    /// lexicon's aliasing protocol. Unresolvable mentions are returned in
    /// the second tuple element (the paper drops them).
    pub fn from_mentions<'a>(
        cuisine: CuisineId,
        mentions: impl IntoIterator<Item = &'a str>,
        lexicon: &Lexicon,
    ) -> (Self, Vec<String>) {
        let mut ids = Vec::new();
        let mut unresolved = Vec::new();
        for m in mentions {
            match lexicon.resolve(m) {
                Some(id) => ids.push(id),
                None => unresolved.push(m.to_string()),
            }
        }
        (Recipe::new(cuisine, ids), unresolved)
    }

    /// The ingredient set, sorted ascending by id.
    pub fn ingredients(&self) -> &[IngredientId] {
        &self.ingredients
    }

    /// Recipe size = number of distinct ingredients.
    pub fn size(&self) -> usize {
        self.ingredients.len()
    }

    /// Whether the recipe contains an ingredient.
    pub fn contains(&self, id: IngredientId) -> bool {
        self.ingredients.binary_search(&id).is_ok()
    }

    /// Number of ingredients from the given category, under the given
    /// lexicon. This is the quantity boxplotted in Fig. 2.
    pub fn category_count(&self, category: Category, lexicon: &Lexicon) -> usize {
        self.ingredients
            .iter()
            .filter(|&&id| lexicon.category(id) == category)
            .count()
    }

    /// Per-category ingredient counts as a dense 21-vector.
    pub fn category_histogram(&self, lexicon: &Lexicon) -> [usize; Category::COUNT] {
        let mut out = [0usize; Category::COUNT];
        for &id in &self.ingredients {
            out[lexicon.category(id).index()] += 1;
        }
        out
    }

    /// Replace ingredient `old` with `new`, preserving the set property.
    ///
    /// Returns `false` (and leaves the recipe unchanged) when `old` is
    /// absent or `new` is already present — the mutation-skipping rule of
    /// DESIGN.md interpretation note 4.
    pub fn replace(&mut self, old: IngredientId, new: IngredientId) -> bool {
        if old == new || self.contains(new) {
            return false;
        }
        match self.ingredients.binary_search(&old) {
            Ok(pos) => {
                self.ingredients.remove(pos);
                let insert_at = self.ingredients.partition_point(|&x| x < new);
                self.ingredients.insert(insert_at, new);
                true
            }
            Err(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u16) -> IngredientId {
        IngredientId(n)
    }

    #[test]
    fn new_sorts_and_dedups() {
        let r = Recipe::new(CuisineId(0), vec![id(5), id(1), id(5), id(3)]);
        assert_eq!(r.ingredients(), &[id(1), id(3), id(5)]);
        assert_eq!(r.size(), 3);
    }

    #[test]
    fn contains_uses_set_semantics() {
        let r = Recipe::new(CuisineId(0), vec![id(2), id(4)]);
        assert!(r.contains(id(2)));
        assert!(!r.contains(id(3)));
    }

    #[test]
    fn replace_swaps_and_keeps_sorted() {
        let mut r = Recipe::new(CuisineId(0), vec![id(1), id(5), id(9)]);
        assert!(r.replace(id(5), id(7)));
        assert_eq!(r.ingredients(), &[id(1), id(7), id(9)]);
        assert_eq!(r.size(), 3);
    }

    #[test]
    fn replace_refuses_duplicates_and_missing() {
        let mut r = Recipe::new(CuisineId(0), vec![id(1), id(5)]);
        assert!(!r.replace(id(1), id(5)), "would create duplicate");
        assert!(!r.replace(id(9), id(2)), "old not present");
        assert!(!r.replace(id(1), id(1)), "no-op replacement");
        assert_eq!(r.ingredients(), &[id(1), id(5)]);
    }

    #[test]
    fn from_mentions_resolves_and_reports_unknown() {
        let lex = Lexicon::standard();
        let (r, unresolved) = Recipe::from_mentions(
            CuisineId(11),
            ["2 cups flour", "3 large eggs", "unobtainium", "butter"],
            lex,
        );
        assert_eq!(r.size(), 3);
        assert_eq!(unresolved, vec!["unobtainium".to_string()]);
    }

    #[test]
    fn from_mentions_merges_aliased_duplicates() {
        let lex = Lexicon::standard();
        // "soy sauce" and "Soybean Sauce" are the same entity.
        let (r, unresolved) =
            Recipe::from_mentions(CuisineId(5), ["soy sauce", "Soybean Sauce"], lex);
        assert!(unresolved.is_empty());
        assert_eq!(r.size(), 1);
    }

    #[test]
    fn category_counts_match_lexicon() {
        let lex = Lexicon::standard();
        let (r, _) = Recipe::from_mentions(
            CuisineId(10),
            ["cumin", "turmeric", "cilantro", "chicken"],
            lex,
        );
        assert_eq!(r.category_count(Category::Spice, lex), 2);
        assert_eq!(r.category_count(Category::Herb, lex), 1);
        assert_eq!(r.category_count(Category::Meat, lex), 1);
        assert_eq!(r.category_count(Category::Dairy, lex), 0);
        let hist = r.category_histogram(lex);
        assert_eq!(hist.iter().sum::<usize>(), r.size());
        assert_eq!(hist[Category::Spice.index()], 2);
    }
}
