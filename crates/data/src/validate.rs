//! Corpus sanity checks used by the experiment harness before analysis.

use cuisine_lexicon::Lexicon;
use serde::{Deserialize, Serialize};

use crate::corpus::Corpus;
use crate::cuisine::CuisineId;

/// A single validation finding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Finding {
    /// The corpus has no recipes at all.
    EmptyCorpus,
    /// A cuisine expected to be populated has no recipes.
    EmptyCuisine {
        /// Region code.
        code: String,
    },
    /// A recipe has fewer than `min` or more than `max` ingredients,
    /// violating the paper's observed bounds (Fig. 1: sizes in [2, 38]).
    SizeOutOfBounds {
        /// Region code.
        code: String,
        /// Offending recipe size.
        size: usize,
        /// Number of recipes at this size.
        count: usize,
    },
    /// A recipe references an ingredient id outside the lexicon.
    DanglingIngredient {
        /// Region code.
        code: String,
        /// The out-of-range id value.
        id: u16,
    },
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Finding::EmptyCorpus => write!(f, "corpus contains no recipes"),
            Finding::EmptyCuisine { code } => write!(f, "cuisine {code} has no recipes"),
            Finding::SizeOutOfBounds { code, size, count } => {
                write!(f, "cuisine {code}: {count} recipe(s) of size {size} outside bounds")
            }
            Finding::DanglingIngredient { code, id } => {
                write!(f, "cuisine {code}: ingredient id {id} outside the lexicon")
            }
        }
    }
}

/// Validation options.
#[derive(Debug, Clone, Copy)]
pub struct ValidationConfig {
    /// Minimum legal recipe size (paper: 2).
    pub min_size: usize,
    /// Maximum legal recipe size (paper: 38).
    pub max_size: usize,
    /// Require all 25 cuisines to be populated.
    pub require_all_cuisines: bool,
}

impl Default for ValidationConfig {
    fn default() -> Self {
        ValidationConfig { min_size: 2, max_size: 38, require_all_cuisines: false }
    }
}

/// Validate a corpus against the lexicon and the paper's structural
/// expectations. Returns the (possibly empty) list of findings.
pub fn validate(corpus: &Corpus, lexicon: &Lexicon, config: &ValidationConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    if corpus.is_empty() {
        findings.push(Finding::EmptyCorpus);
        return findings;
    }
    for cuisine in CuisineId::all() {
        let code = cuisine.code().to_string();
        if corpus.recipe_count(cuisine) == 0 {
            if config.require_all_cuisines {
                findings.push(Finding::EmptyCuisine { code });
            }
            continue;
        }
        // Aggregate out-of-bounds sizes so one bad generator parameter does
        // not produce thousands of findings.
        let mut bad_sizes: std::collections::BTreeMap<usize, usize> = Default::default();
        let mut dangling: Vec<u16> = Vec::new();
        for r in corpus.recipes_in(cuisine) {
            let s = r.size();
            if s < config.min_size || s > config.max_size {
                *bad_sizes.entry(s).or_default() += 1;
            }
            for ing in r.ingredients() {
                if ing.index() >= lexicon.len() {
                    dangling.push(ing.0);
                }
            }
        }
        for (size, count) in bad_sizes {
            findings.push(Finding::SizeOutOfBounds { code: code.clone(), size, count });
        }
        dangling.sort_unstable();
        dangling.dedup();
        for id in dangling {
            findings.push(Finding::DanglingIngredient { code: code.clone(), id });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recipe::Recipe;
    use cuisine_lexicon::IngredientId;

    fn ids(lex: &Lexicon, names: &[&str]) -> Vec<IngredientId> {
        names.iter().map(|n| lex.resolve(n).unwrap()).collect()
    }

    #[test]
    fn clean_corpus_has_no_findings() {
        let lex = Lexicon::standard();
        let c = Corpus::new(vec![Recipe::new(
            CuisineId(0),
            ids(lex, &["Cumin", "Olive", "Cilantro"]),
        )]);
        assert!(validate(&c, lex, &ValidationConfig::default()).is_empty());
    }

    #[test]
    fn empty_corpus_flagged() {
        let lex = Lexicon::standard();
        let findings = validate(&Corpus::new(vec![]), lex, &ValidationConfig::default());
        assert_eq!(findings, vec![Finding::EmptyCorpus]);
    }

    #[test]
    fn undersized_recipes_flagged_and_aggregated() {
        let lex = Lexicon::standard();
        let c = Corpus::new(vec![
            Recipe::new(CuisineId(0), ids(lex, &["Cumin"])),
            Recipe::new(CuisineId(0), ids(lex, &["Olive"])),
        ]);
        let findings = validate(&c, lex, &ValidationConfig::default());
        assert_eq!(findings.len(), 1);
        match &findings[0] {
            Finding::SizeOutOfBounds { size, count, .. } => {
                assert_eq!(*size, 1);
                assert_eq!(*count, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dangling_ingredient_flagged() {
        let lex = Lexicon::standard();
        let c = Corpus::new(vec![Recipe::new(
            CuisineId(0),
            vec![IngredientId(60_000), IngredientId(60_001)],
        )]);
        let findings = validate(&c, lex, &ValidationConfig::default());
        assert!(findings
            .iter()
            .any(|f| matches!(f, Finding::DanglingIngredient { id: 60_000, .. })));
    }

    #[test]
    fn missing_cuisines_only_with_strict_config() {
        let lex = Lexicon::standard();
        let c = Corpus::new(vec![Recipe::new(
            CuisineId(0),
            ids(lex, &["Cumin", "Olive"]),
        )]);
        assert!(validate(&c, lex, &ValidationConfig::default()).is_empty());
        let strict = ValidationConfig { require_all_cuisines: true, ..Default::default() };
        let findings = validate(&c, lex, &strict);
        assert_eq!(findings.len(), 24, "24 empty cuisines flagged");
    }
}
