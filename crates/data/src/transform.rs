//! Corpus transformations: subsampling, filtering, and merging.
//!
//! The ablation experiments subsample corpora to study how statistic
//! stability depends on corpus size (the paper's observation that sparsely
//! curated cuisines are the most distinct), and merge evolved pools back
//! into corpora for downstream analysis.

use rand::Rng;

use crate::corpus::Corpus;
use crate::cuisine::CuisineId;
use crate::recipe::Recipe;

/// Uniformly subsample `fraction` of each cuisine's recipes (at least one
/// per populated cuisine), preserving per-cuisine proportions.
///
/// # Panics
/// Panics when `fraction` is outside `(0, 1]`.
pub fn subsample<R: Rng + ?Sized>(corpus: &Corpus, fraction: f64, rng: &mut R) -> Corpus {
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "fraction must be in (0, 1], got {fraction}"
    );
    let mut recipes = Vec::new();
    for cuisine in CuisineId::all() {
        let ids = corpus.recipe_ids_in(cuisine);
        if ids.is_empty() {
            continue;
        }
        let k = ((ids.len() as f64 * fraction).round() as usize).clamp(1, ids.len());
        let picks =
            cuisine_stats::sampling::sample_without_replacement(rng, ids.len(), k);
        for p in picks {
            recipes.push(corpus.recipe(ids[p]).clone());
        }
    }
    Corpus::new(recipes)
}

/// Keep only the recipes of the given cuisines.
pub fn filter_cuisines(corpus: &Corpus, keep: &[CuisineId]) -> Corpus {
    let recipes: Vec<Recipe> = corpus
        .recipes()
        .iter()
        .filter(|r| keep.contains(&r.cuisine))
        .cloned()
        .collect();
    Corpus::new(recipes)
}

/// Keep only recipes whose size lies in `[min, max]`.
pub fn filter_sizes(corpus: &Corpus, min: usize, max: usize) -> Corpus {
    let recipes: Vec<Recipe> = corpus
        .recipes()
        .iter()
        .filter(|r| r.size() >= min && r.size() <= max)
        .cloned()
        .collect();
    Corpus::new(recipes)
}

/// Merge corpora into one (recipes concatenated in input order).
pub fn merge(corpora: &[&Corpus]) -> Corpus {
    let recipes: Vec<Recipe> = corpora
        .iter()
        .flat_map(|c| c.recipes().iter().cloned())
        .collect();
    Corpus::new(recipes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuisine_lexicon::IngredientId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn id(n: u16) -> IngredientId {
        IngredientId(n)
    }

    fn corpus() -> Corpus {
        let mut recipes = Vec::new();
        for i in 0..100u16 {
            recipes.push(Recipe::new(CuisineId(0), vec![id(i), id(i + 1), id(i + 2)]));
        }
        for i in 0..50u16 {
            recipes.push(Recipe::new(CuisineId(1), vec![id(i), id(i + 1)]));
        }
        Corpus::new(recipes)
    }

    #[test]
    fn subsample_preserves_proportions() {
        let c = corpus();
        let mut rng = StdRng::seed_from_u64(1);
        let s = subsample(&c, 0.5, &mut rng);
        assert_eq!(s.recipe_count(CuisineId(0)), 50);
        assert_eq!(s.recipe_count(CuisineId(1)), 25);
    }

    #[test]
    fn subsample_keeps_at_least_one() {
        let c = corpus();
        let mut rng = StdRng::seed_from_u64(2);
        let s = subsample(&c, 0.001, &mut rng);
        assert_eq!(s.recipe_count(CuisineId(0)), 1);
        assert_eq!(s.recipe_count(CuisineId(1)), 1);
    }

    #[test]
    fn subsample_full_fraction_is_permutation() {
        let c = corpus();
        let mut rng = StdRng::seed_from_u64(3);
        let s = subsample(&c, 1.0, &mut rng);
        assert_eq!(s.len(), c.len());
    }

    #[test]
    #[should_panic(expected = "fraction must be in")]
    fn subsample_rejects_zero() {
        let c = corpus();
        let mut rng = StdRng::seed_from_u64(4);
        let _ = subsample(&c, 0.0, &mut rng);
    }

    #[test]
    fn filter_cuisines_keeps_only_requested() {
        let c = corpus();
        let f = filter_cuisines(&c, &[CuisineId(1)]);
        assert_eq!(f.recipe_count(CuisineId(0)), 0);
        assert_eq!(f.recipe_count(CuisineId(1)), 50);
    }

    #[test]
    fn filter_sizes_bounds_recipes() {
        let c = corpus();
        let f = filter_sizes(&c, 3, 3);
        assert_eq!(f.len(), 100, "only the size-3 recipes of cuisine 0");
        assert!(f.recipes().iter().all(|r| r.size() == 3));
    }

    #[test]
    fn merge_concatenates() {
        let a = corpus();
        let b = filter_cuisines(&a, &[CuisineId(1)]);
        let m = merge(&[&a, &b]);
        assert_eq!(m.len(), a.len() + b.len());
        assert_eq!(m.recipe_count(CuisineId(1)), 100);
    }
}
