//! The nine recipe-aggregator sources of Section II.
//!
//! "We compiled a total of 158544 recipes from the following recipe
//! aggregator websites: Genius Kitchen (101226), Allrecipes (16131), Food
//! Network (15771), Epicurious (11022), Taste AU (7633), The Spruce
//! (3830), TarlaDalal (2538), My Korean Kitchen (198), and Kraft Recipes
//! (195)."
//!
//! The per-source counts sum to the paper's headline 158,544 — which
//! exceeds the Table-I per-cuisine sum (158,460) by 84, the recipes that
//! evidently lacked a usable region annotation. Both constants are pinned
//! here.

use std::fmt;

use serde::{Deserialize, Serialize};

/// One of the paper's nine recipe-aggregator websites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Source {
    /// geniuskitchen.com (formerly food.com).
    GeniusKitchen,
    /// allrecipes.com.
    Allrecipes,
    /// foodnetwork.com.
    FoodNetwork,
    /// epicurious.com.
    Epicurious,
    /// taste.com.au.
    TasteAu,
    /// thespruce.com.
    TheSpruce,
    /// tarladalal.com.
    TarlaDalal,
    /// mykoreankitchen.com.
    MyKoreanKitchen,
    /// kraftrecipes.com.
    KraftRecipes,
}

impl Source {
    /// All nine sources, in the paper's order (descending recipe count).
    pub const ALL: [Source; 9] = [
        Source::GeniusKitchen,
        Source::Allrecipes,
        Source::FoodNetwork,
        Source::Epicurious,
        Source::TasteAu,
        Source::TheSpruce,
        Source::TarlaDalal,
        Source::MyKoreanKitchen,
        Source::KraftRecipes,
    ];

    /// Display name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Source::GeniusKitchen => "Genius Kitchen",
            Source::Allrecipes => "Allrecipes",
            Source::FoodNetwork => "Food Network",
            Source::Epicurious => "Epicurious",
            Source::TasteAu => "Taste AU",
            Source::TheSpruce => "The Spruce",
            Source::TarlaDalal => "TarlaDalal",
            Source::MyKoreanKitchen => "My Korean Kitchen",
            Source::KraftRecipes => "Kraft Recipes",
        }
    }

    /// Domain name as listed in Section II.
    pub fn domain(self) -> &'static str {
        match self {
            Source::GeniusKitchen => "geniuskitchen.com",
            Source::Allrecipes => "allrecipes.com",
            Source::FoodNetwork => "foodnetwork.com",
            Source::Epicurious => "epicurious.com",
            Source::TasteAu => "taste.com.au",
            Source::TheSpruce => "thespruce.com",
            Source::TarlaDalal => "tarladalal.com",
            Source::MyKoreanKitchen => "mykoreankitchen.com",
            Source::KraftRecipes => "kraftrecipes.com",
        }
    }

    /// Number of recipes the paper compiled from this source.
    pub fn recipes(self) -> usize {
        match self {
            Source::GeniusKitchen => 101_226,
            Source::Allrecipes => 16_131,
            Source::FoodNetwork => 15_771,
            Source::Epicurious => 11_022,
            Source::TasteAu => 7_633,
            Source::TheSpruce => 3_830,
            Source::TarlaDalal => 2_538,
            Source::MyKoreanKitchen => 198,
            Source::KraftRecipes => 195,
        }
    }

    /// Share of the headline corpus contributed by this source.
    pub fn share(self) -> f64 {
        self.recipes() as f64 / headline_total() as f64
    }
}

impl fmt::Display for Source {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Sum of the per-source counts — the paper's headline corpus size.
pub fn headline_total() -> usize {
    Source::ALL.iter().map(|s| s.recipes()).sum()
}

/// The 84-recipe gap between the headline total and the Table-I per-cuisine
/// sum: recipes without a usable region annotation.
pub fn unannotated_count() -> usize {
    headline_total() - crate::cuisine::table1_recipe_total()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_source_counts_sum_to_headline() {
        assert_eq!(headline_total(), 158_544);
        assert_eq!(headline_total(), crate::cuisine::HEADLINE_RECIPE_TOTAL);
    }

    #[test]
    fn sources_are_in_descending_count_order() {
        for w in Source::ALL.windows(2) {
            assert!(w[0].recipes() >= w[1].recipes());
        }
    }

    #[test]
    fn unannotated_gap_is_84() {
        assert_eq!(unannotated_count(), 84);
    }

    #[test]
    fn shares_sum_to_one() {
        let total: f64 = Source::ALL.iter().map(|s| s.share()).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // Genius Kitchen dominates, as in the paper.
        assert!(Source::GeniusKitchen.share() > 0.6);
    }

    #[test]
    fn names_and_domains_are_unique() {
        let mut names: Vec<&str> = Source::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 9);
        let mut domains: Vec<&str> = Source::ALL.iter().map(|s| s.domain()).collect();
        domains.sort_unstable();
        domains.dedup();
        assert_eq!(domains.len(), 9);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Source::TasteAu.to_string(), "Taste AU");
    }
}
