//! The 25 geo-cultural regions ("cuisines") and their Table-I reference
//! statistics.
//!
//! Section II of the paper designates the *region* annotation as the cuisine
//! of a recipe; Table I lists, per cuisine, the number of recipes, the
//! number of unique ingredients, and the top overrepresented ingredients.
//! Those numbers are embedded here verbatim as calibration targets for the
//! synthetic corpus and as the expected output of experiment E1.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// Dense identifier of one of the 25 world cuisines.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct CuisineId(pub u8);

impl CuisineId {
    /// The id as a dense index in `0..25`.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// All 25 cuisine ids.
    pub fn all() -> impl Iterator<Item = CuisineId> {
        (0..CUISINES.len() as u8).map(CuisineId)
    }

    /// The reference record for this cuisine.
    ///
    /// # Panics
    /// Panics for an out-of-range id.
    pub fn info(self) -> &'static Cuisine {
        &CUISINES[self.index()]
    }

    /// Short region code, e.g. `"ITA"`.
    pub fn code(self) -> &'static str {
        self.info().code
    }

    /// Full region name, e.g. `"Italy"`.
    pub fn name(self) -> &'static str {
        self.info().name
    }
}

impl fmt::Display for CuisineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// Error returned when parsing an unknown cuisine code or name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCuisineError(pub String);

impl fmt::Display for ParseCuisineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown cuisine: {:?}", self.0)
    }
}

impl std::error::Error for ParseCuisineError {}

impl FromStr for CuisineId {
    type Err = ParseCuisineError;

    /// Parse a region code (`"ITA"`) or full name (`"Italy"`),
    /// case-insensitively.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let key = s.trim();
        CUISINES
            .iter()
            .position(|c| c.code.eq_ignore_ascii_case(key) || c.name.eq_ignore_ascii_case(key))
            .map(|i| CuisineId(i as u8))
            .ok_or_else(|| ParseCuisineError(s.to_string()))
    }
}

/// Reference record for one cuisine, as published in Table I.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Cuisine {
    /// Full region name, e.g. `"Indian Subcontinent"`.
    pub name: &'static str,
    /// Region code, e.g. `"INSC"`.
    pub code: &'static str,
    /// Number of recipes compiled for this cuisine (Table I).
    pub recipes: usize,
    /// Number of unique ingredients observed (Table I).
    pub ingredients: usize,
    /// Top overrepresented ingredients (Table I; 5 entries, 6 for INSC).
    pub overrepresented: &'static [&'static str],
}

impl Cuisine {
    /// Ratio φ of unique ingredients to recipes — the pool-growth threshold
    /// of Algorithm 1.
    pub fn phi(&self) -> f64 {
        self.ingredients as f64 / self.recipes as f64
    }
}

/// Table I, embedded verbatim.
pub static CUISINES: [Cuisine; 25] = [
    Cuisine {
        name: "Africa",
        code: "AFR",
        recipes: 5465,
        ingredients: 442,
        overrepresented: &["Cumin", "Cinnamon", "Olive", "Cilantro", "Paprika"],
    },
    Cuisine {
        name: "Australia & NZ",
        code: "ANZ",
        recipes: 6169,
        ingredients: 463,
        overrepresented: &["Butter", "Egg", "Sugar", "Flour", "Coconut"],
    },
    Cuisine {
        name: "Republic of Ireland",
        code: "IRL",
        recipes: 2702,
        ingredients: 378,
        overrepresented: &["Potato", "Butter", "Cream", "Flour", "Baking Powder"],
    },
    Cuisine {
        name: "Canada",
        code: "CAN",
        recipes: 7725,
        ingredients: 483,
        overrepresented: &["Baking Powder", "Sugar", "Butter", "Flour", "Vanilla"],
    },
    Cuisine {
        name: "Caribbean",
        code: "CBN",
        recipes: 3887,
        ingredients: 417,
        overrepresented: &["Lime", "Rum", "Pineapple", "Allspice", "Thyme"],
    },
    Cuisine {
        name: "China",
        code: "CHN",
        recipes: 7123,
        ingredients: 442,
        overrepresented: &["Soybean Sauce", "Sesame", "Ginger", "Corn", "Chicken"],
    },
    Cuisine {
        name: "DACH Countries",
        code: "DACH",
        recipes: 4641,
        ingredients: 430,
        overrepresented: &["Flour", "Egg", "Butter", "Sugar", "Swiss Cheese"],
    },
    Cuisine {
        name: "Eastern Europe",
        code: "EE",
        recipes: 3179,
        ingredients: 383,
        overrepresented: &["Flour", "Egg", "Butter", "Cream", "Salt"],
    },
    Cuisine {
        name: "France",
        code: "FRA",
        recipes: 9590,
        ingredients: 511,
        overrepresented: &["Butter", "Egg", "Vanilla", "Milk", "Cream"],
    },
    Cuisine {
        name: "Greece",
        code: "GRC",
        recipes: 5286,
        ingredients: 405,
        overrepresented: &["Olive", "Feta Cheese", "Oregano", "Lemon Juice", "Tomato"],
    },
    Cuisine {
        name: "Indian Subcontinent",
        code: "INSC",
        recipes: 10531,
        ingredients: 462,
        overrepresented: &["Cayenne", "Turmeric", "Cumin", "Cilantro", "Ginger", "Garam Masala"],
    },
    Cuisine {
        name: "Italy",
        code: "ITA",
        recipes: 23179,
        ingredients: 506,
        overrepresented: &["Olive", "Parmesan Cheese", "Basil", "Garlic", "Tomato"],
    },
    Cuisine {
        name: "Japan",
        code: "JPN",
        recipes: 2884,
        ingredients: 382,
        overrepresented: &["Soybean Sauce", "Sesame", "Ginger", "Vinegar", "Sake"],
    },
    Cuisine {
        name: "Korea",
        code: "KOR",
        recipes: 1228,
        ingredients: 291,
        overrepresented: &["Sesame", "Soybean Sauce", "Garlic", "Sugar", "Ginger"],
    },
    Cuisine {
        name: "Mexico",
        code: "MEX",
        recipes: 16065,
        ingredients: 467,
        overrepresented: &["Tortilla", "Cilantro", "Lime", "Cumin", "Tomato"],
    },
    Cuisine {
        name: "Middle East",
        code: "ME",
        recipes: 4858,
        ingredients: 423,
        overrepresented: &["Olive", "Lemon Juice", "Parsley", "Cumin", "Mint"],
    },
    Cuisine {
        name: "Scandinavia",
        code: "SCND",
        recipes: 3026,
        ingredients: 377,
        overrepresented: &["Sugar", "Flour", "Butter", "Egg", "Milk"],
    },
    Cuisine {
        name: "South America",
        code: "SAM",
        recipes: 7458,
        ingredients: 457,
        overrepresented: &["Beef", "Onion", "Pepper", "Garlic", "Mushroom"],
    },
    Cuisine {
        name: "South East Asia",
        code: "SEA",
        recipes: 2523,
        ingredients: 361,
        overrepresented: &["Fish", "Sugar", "Soybean Sauce", "Garlic", "Lime"],
    },
    Cuisine {
        name: "Spain",
        code: "SP",
        recipes: 4154,
        ingredients: 413,
        overrepresented: &["Olive", "Paprika", "Garlic", "Tomato", "Parsley"],
    },
    Cuisine {
        name: "Thailand",
        code: "THA",
        recipes: 3795,
        ingredients: 378,
        overrepresented: &["Fish", "Lime", "Cilantro", "Coconut Milk", "Soybean Sauce"],
    },
    Cuisine {
        name: "USA",
        code: "USA",
        recipes: 16026,
        ingredients: 592,
        overrepresented: &["Butter", "Sugar", "Vanilla", "Flour", "Mustard"],
    },
    Cuisine {
        name: "Belgium-Netherlands",
        code: "BN",
        recipes: 1116,
        ingredients: 323,
        overrepresented: &["Butter", "Flour", "Egg", "Sugar", "Milk"],
    },
    Cuisine {
        name: "Central America",
        code: "CAM",
        recipes: 470,
        ingredients: 294,
        overrepresented: &["Salt", "Tomato", "Onion", "Macaroni", "Celery"],
    },
    Cuisine {
        name: "United Kingdom",
        code: "UK",
        recipes: 5380,
        ingredients: 456,
        overrepresented: &["Butter", "Flour", "Egg", "Sugar", "Milk"],
    },
];

/// Number of cuisines.
pub const CUISINE_COUNT: usize = 25;

/// Total recipes across the 25 Table-I rows (158,460).
///
/// The paper's headline corpus size is 158,544 — the sum of the per-website
/// counts in Section II. The 84-recipe discrepancy between the two published
/// totals (recipes without a usable region annotation, presumably) is
/// inherited here verbatim.
pub fn table1_recipe_total() -> usize {
    CUISINES.iter().map(|c| c.recipes).sum()
}

/// The paper's headline corpus size (sum of per-website counts).
pub const HEADLINE_RECIPE_TOTAL: usize = 158_544;

/// Table-I mean number of recipes per cuisine, as quoted in the paper
/// ("the average number of recipes and ingredients compiled being 6338 and
/// 421 respectively").
pub fn table1_mean_recipes() -> f64 {
    table1_recipe_total() as f64 / CUISINE_COUNT as f64
}

/// Table-I mean number of unique ingredients per cuisine.
pub fn table1_mean_ingredients() -> f64 {
    CUISINES.iter().map(|c| c.ingredients).sum::<usize>() as f64 / CUISINE_COUNT as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_five_cuisines() {
        assert_eq!(CUISINES.len(), 25);
        assert_eq!(CuisineId::all().count(), 25);
    }

    #[test]
    fn codes_and_names_are_unique() {
        let mut codes: Vec<&str> = CUISINES.iter().map(|c| c.code).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), 25);
        let mut names: Vec<&str> = CUISINES.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 25);
    }

    #[test]
    fn recipe_total_matches_table1_sum() {
        assert_eq!(table1_recipe_total(), 158_460);
    }

    #[test]
    fn mean_recipes_and_ingredients_match_paper_quotes() {
        // Paper: "the average number of recipes and ingredients compiled
        // being 6338 and 421 respectively".
        assert_eq!(table1_mean_recipes().round() as i64, 6338);
        assert_eq!(table1_mean_ingredients().round() as i64, 421);
    }

    #[test]
    fn extremes_match_paper_quotes() {
        // "The largest collection of recipes is from Italy (23179) whereas
        // the lowest is from Central America (470)."
        let max = CUISINES.iter().max_by_key(|c| c.recipes).unwrap();
        assert_eq!(max.code, "ITA");
        assert_eq!(max.recipes, 23_179);
        let min = CUISINES.iter().min_by_key(|c| c.recipes).unwrap();
        assert_eq!(min.code, "CAM");
        assert_eq!(min.recipes, 470);
    }

    #[test]
    fn insc_lists_six_overrepresented() {
        let insc: CuisineId = "INSC".parse().unwrap();
        assert_eq!(insc.info().overrepresented.len(), 6);
        for c in CuisineId::all().filter(|&c| c.code() != "INSC") {
            assert_eq!(c.info().overrepresented.len(), 5, "{}", c.code());
        }
    }

    #[test]
    fn parse_by_code_and_name() {
        assert_eq!("ITA".parse::<CuisineId>().unwrap().name(), "Italy");
        assert_eq!("italy".parse::<CuisineId>().unwrap().code(), "ITA");
        assert_eq!(" usa ".parse::<CuisineId>().unwrap().code(), "USA");
        assert!("Atlantis".parse::<CuisineId>().is_err());
    }

    #[test]
    fn phi_is_ingredients_over_recipes() {
        let ita: CuisineId = "ITA".parse().unwrap();
        let phi = ita.info().phi();
        assert!((phi - 506.0 / 23179.0).abs() < 1e-12);
    }

    #[test]
    fn display_shows_code() {
        let kor: CuisineId = "Korea".parse().unwrap();
        assert_eq!(kor.to_string(), "KOR");
    }

    #[test]
    fn all_overrepresented_ingredients_resolve_in_lexicon() {
        let lex = cuisine_lexicon::Lexicon::standard();
        for c in &CUISINES {
            for name in c.overrepresented {
                assert!(
                    lex.resolve(name).is_some(),
                    "{} overrepresented ingredient {:?} missing from lexicon",
                    c.code,
                    name
                );
            }
        }
    }
}
