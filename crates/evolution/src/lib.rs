//! # cuisine-evolution
//!
//! The primary contribution of *Tuwani et al., ICDE 2019*: computational
//! models of culinary evolution.
//!
//! Section V of the paper defines a family of copy-mutate models
//! (Algorithm 1) and a null model:
//!
//! - **CM-R** — replacement ingredient drawn from the whole active pool;
//! - **CM-C** — replacement constrained to the category of the ingredient
//!   being replaced;
//! - **CM-M** — a fair coin picks between the two rules per mutation;
//! - **NM** — no copying or mutation (the control).
//!
//! Crate layout:
//!
//! - [`fitness`] — Uniform(0,1) ingredient fitness (Step 1).
//! - [`pool`] — ingredient/recipe pool bookkeeping with the ∂ = m/n vs φ
//!   growth dynamics (Steps 2 and 5).
//! - [`model`] — model kinds, parameters (m = 20, M = 4 or 6, n₀ = m/φ),
//!   and per-cuisine setup.
//! - [`copy_mutate`] / [`null_model`] — the engines (Steps 3-4).
//! - [`ensemble`] — deterministic parallel 100-replicate runs.
//! - [`horizontal`] — the Section VII future-work extension: co-evolution
//!   of all cuisines with cross-cuisine ingredient transfer.
//! - [`trace`] — instrumented runs exposing the non-equilibrium dynamics
//!   (pool growth, ∂, mean occupied fitness) in the spirit of Kinouchi et
//!   al. \[7\].
//! - [`mod@evaluate`] — the Fig. 4 harness: aggregated model curves vs the
//!   empirical combination rank-frequency distribution, scored with Eq. 2.
//!
//! ```no_run
//! use cuisine_evolution::{evaluate, EvaluationConfig, ModelKind};
//! use cuisine_lexicon::Lexicon;
//! use cuisine_synth::{generate_corpus, SynthConfig};
//!
//! let lex = Lexicon::standard();
//! let corpus = generate_corpus(&SynthConfig::test_scale(1), lex);
//! let eval = evaluate(&corpus, lex, &ModelKind::ALL, &EvaluationConfig::default());
//! println!("CM-R mean distance: {:?}", eval.mean_distance(ModelKind::CmR));
//! ```

#![warn(missing_docs)]

pub mod copy_mutate;
pub mod ensemble;
pub mod evaluate;
pub mod fitness;
pub mod horizontal;
pub mod model;
pub mod null_model;
pub mod pool;
pub mod significance;
pub mod trace;

pub use copy_mutate::run_copy_mutate;
pub use ensemble::{replicate_seed, run_ensemble, run_ensemble_map, EnsembleConfig};
pub use evaluate::{
    evaluate, evaluate_model_on_cuisine, evaluate_with, CuisineEvaluation, Evaluation,
    EvaluationConfig, ModelResult,
};
pub use fitness::FitnessTable;
pub use horizontal::{geo_neighbors, run_horizontal, HorizontalConfig};
pub use model::{CuisineSetup, ModelKind, ModelParams, SizeMode};
pub use null_model::run_null;
pub use pool::PoolState;
pub use significance::{compare_family_vs, compare_models, ModelComparison};
pub use trace::{run_copy_mutate_traced, EvolutionTrace, Snapshot};
