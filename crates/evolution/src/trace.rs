//! Instrumented evolution runs: time series of the pool observables.
//!
//! The copy-mutate model descends from Kinouchi et al.'s "non-equilibrium
//! nature of culinary evolution" \[7\], whose analysis tracks how pool
//! composition and fitness evolve over time. [`run_copy_mutate_traced`]
//! exposes those dynamics: snapshots of the recipe/ingredient pool sizes,
//! ∂ = m/n, the mean fitness of ingredients in use, and usage
//! concentration, taken every `snapshot_every` recipe additions.

use cuisine_data::Recipe;
use cuisine_lexicon::Lexicon;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

use crate::copy_mutate::initial_size;
use crate::fitness::FitnessTable;
use crate::model::{CuisineSetup, ModelKind, ModelParams};
use crate::pool::PoolState;

/// One snapshot of the evolving system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Recipes evolved so far (n).
    pub recipes: usize,
    /// Active ingredient-pool size (m).
    pub pool: usize,
    /// ∂ = m / n.
    pub partial: f64,
    /// Mean fitness over ingredient *occurrences* in the recipe pool —
    /// rises as mutation pressure replaces weak ingredients.
    pub mean_fitness: f64,
    /// Distinct ingredients appearing in at least one recipe.
    pub distinct_used: usize,
}

/// The full time series of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvolutionTrace {
    /// Which model produced the trace.
    pub model: ModelKind,
    /// Snapshots in chronological order (first = initial pool).
    pub snapshots: Vec<Snapshot>,
}

impl EvolutionTrace {
    /// Net change in mean occupied fitness from the first to the last
    /// snapshot — the selection-pressure signal. `None` with fewer than two
    /// snapshots.
    pub fn fitness_gain(&self) -> Option<f64> {
        let first = self.snapshots.first()?;
        let last = self.snapshots.last()?;
        if self.snapshots.len() < 2 {
            return None;
        }
        Some(last.mean_fitness - first.mean_fitness)
    }
}

fn snapshot(state: &PoolState, fitness: &FitnessTable) -> Snapshot {
    let mut sum = 0.0f64;
    let mut count = 0usize;
    let mut used = std::collections::HashSet::new();
    for r in state.recipes() {
        for &ing in r.ingredients() {
            sum += fitness.fitness(ing);
            count += 1;
            used.insert(ing);
        }
    }
    Snapshot {
        recipes: state.n(),
        pool: state.m(),
        partial: state.partial(),
        mean_fitness: if count > 0 { sum / count as f64 } else { 0.0 },
        distinct_used: used.len(),
    }
}

/// Run one copy-mutate replicate while recording snapshots.
///
/// Functionally identical to [`crate::run_copy_mutate`] modulo the RNG
/// stream (the engine is re-implemented here to interleave snapshots), so
/// use this for dynamics studies, not for reproducing ensemble numbers.
///
/// # Panics
/// Panics for [`ModelKind::Null`], an empty ingredient list, or
/// `snapshot_every == 0`.
pub fn run_copy_mutate_traced<R: Rng + ?Sized>(
    kind: ModelKind,
    params: &ModelParams,
    setup: &CuisineSetup,
    lexicon: &Lexicon,
    snapshot_every: usize,
    rng: &mut R,
) -> (Vec<Recipe>, EvolutionTrace) {
    assert!(kind != ModelKind::Null, "traced runs are for copy-mutate models");
    assert!(snapshot_every > 0, "snapshot interval must be positive");

    let fitness = FitnessTable::sample(lexicon.len(), rng);
    let n0 = params.resolve_n0(setup.phi).min(setup.target_recipes);
    let size = initial_size(params, setup, rng);
    let mut state = PoolState::initialize(
        &setup.ingredients,
        params.m,
        n0,
        size,
        setup.cuisine,
        lexicon,
        rng,
    );

    let mut snapshots = vec![snapshot(&state, &fitness)];
    let mut since_last = 0usize;
    while state.n() < setup.target_recipes {
        if state.partial() >= setup.phi || state.master_remaining() == 0 {
            let idx = state.pick_recipe(rng);
            let mut r = state.clone_recipe(idx);
            // Inline mutation identical to the uninstrumented engine.
            for _ in 0..params.mutations {
                if r.size() == 0 {
                    break;
                }
                let i = r.ingredients()[rng.random_range(0..r.size())];
                let j = match kind {
                    ModelKind::CmR => Some(state.pick_active(rng)),
                    ModelKind::CmC => {
                        state.pick_active_in_category(rng, lexicon.category(i))
                    }
                    ModelKind::CmM => {
                        if rng.random::<bool>() {
                            state.pick_active_in_category(rng, lexicon.category(i))
                        } else {
                            Some(state.pick_active(rng))
                        }
                    }
                    ModelKind::Null => unreachable!(),
                };
                if let Some(j) = j {
                    if fitness.fitness(j) > fitness.fitness(i) {
                        r.replace(i, j);
                    }
                }
            }
            state.push_recipe(r);
            since_last += 1;
            if since_last >= snapshot_every {
                snapshots.push(snapshot(&state, &fitness));
                since_last = 0;
            }
        } else {
            state.grow(rng, lexicon);
        }
    }
    if since_last > 0 {
        snapshots.push(snapshot(&state, &fitness));
    }
    let recipes = state.into_recipes();
    (recipes, EvolutionTrace { model: kind, snapshots })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuisine_data::CuisineId;
    use cuisine_lexicon::IngredientId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(target: usize) -> CuisineSetup {
        let lex = Lexicon::standard();
        let ingredients: Vec<IngredientId> = lex.ids().take(120).collect();
        CuisineSetup {
            cuisine: CuisineId(0),
            ingredients,
            mean_size: 8.0,
            target_recipes: target,
            phi: 120.0 / target as f64,
            empirical_sizes: vec![],
        }
    }

    #[test]
    fn trace_covers_the_whole_run() {
        let lex = Lexicon::standard();
        let s = setup(300);
        let mut rng = StdRng::seed_from_u64(1);
        let (recipes, trace) = run_copy_mutate_traced(
            ModelKind::CmR,
            &ModelParams::paper(ModelKind::CmR),
            &s,
            lex,
            50,
            &mut rng,
        );
        assert_eq!(recipes.len(), 300);
        assert_eq!(trace.model, ModelKind::CmR);
        assert!(trace.snapshots.len() >= 2);
        assert_eq!(trace.snapshots.last().unwrap().recipes, 300);
        // Recipe counts are non-decreasing along the trace.
        for w in trace.snapshots.windows(2) {
            assert!(w[0].recipes <= w[1].recipes);
            assert!(w[0].pool <= w[1].pool, "pool only grows");
        }
    }

    #[test]
    fn fitness_rises_under_selection() {
        let lex = Lexicon::standard();
        let s = setup(500);
        let mut rng = StdRng::seed_from_u64(2);
        let params = ModelParams { mutations: 6, ..ModelParams::paper(ModelKind::CmR) };
        let (_, trace) =
            run_copy_mutate_traced(ModelKind::CmR, &params, &s, lex, 50, &mut rng);
        let gain = trace.fitness_gain().unwrap();
        assert!(gain > 0.05, "selection should raise mean fitness, gain {gain}");
        // Initial pool mean fitness ~ 0.5 (uniform sample).
        let first = trace.snapshots.first().unwrap().mean_fitness;
        assert!((first - 0.5).abs() < 0.2, "initial mean fitness {first}");
    }

    #[test]
    fn snapshot_consistency() {
        let lex = Lexicon::standard();
        let s = setup(120);
        let mut rng = StdRng::seed_from_u64(3);
        let (_, trace) = run_copy_mutate_traced(
            ModelKind::CmC,
            &ModelParams::paper(ModelKind::CmC),
            &s,
            lex,
            30,
            &mut rng,
        );
        for snap in &trace.snapshots {
            assert!((snap.partial - snap.pool as f64 / snap.recipes as f64).abs() < 1e-12);
            assert!(snap.distinct_used <= snap.pool, "used ⊆ pool grown so far");
            assert!(snap.mean_fitness >= 0.0 && snap.mean_fitness <= 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "copy-mutate models")]
    fn null_is_rejected() {
        let lex = Lexicon::standard();
        let s = setup(10);
        let mut rng = StdRng::seed_from_u64(4);
        let _ = run_copy_mutate_traced(
            ModelKind::Null,
            &ModelParams::paper(ModelKind::Null),
            &s,
            lex,
            5,
            &mut rng,
        );
    }
}
