//! The copy-mutate engine — Algorithm 1 with the three replacement
//! policies (CM-R, CM-C, CM-M).

use cuisine_data::Recipe;
use cuisine_lexicon::Lexicon;
use rand::{Rng, RngExt};

use crate::fitness::FitnessTable;
use crate::model::{CuisineSetup, ModelKind, ModelParams, SizeMode};
use crate::pool::PoolState;

/// Run one replicate of a copy-mutate model (CM-R / CM-C / CM-M).
///
/// Returns the full evolved recipe pool of `setup.target_recipes` recipes
/// (initial pool included), per the paper's accounting: "The total number
/// of recipes evolved in this manner is equal to the recipe count in the
/// empirical data minus the size of the initial recipe pool."
///
/// # Panics
/// Panics when called with [`ModelKind::Null`] (see
/// [`crate::null_model::run_null`]) or with an empty ingredient list.
pub fn run_copy_mutate<R: Rng + ?Sized>(
    kind: ModelKind,
    params: &ModelParams,
    setup: &CuisineSetup,
    lexicon: &Lexicon,
    rng: &mut R,
) -> Vec<Recipe> {
    assert!(kind != ModelKind::Null, "use run_null for the null model");
    let fitness = FitnessTable::sample(lexicon.len(), rng);
    run_copy_mutate_with_fitness(kind, params, setup, lexicon, &fitness, rng)
}

/// [`run_copy_mutate`] with an externally supplied fitness table (for
/// ablations with controlled fitness).
pub fn run_copy_mutate_with_fitness<R: Rng + ?Sized>(
    kind: ModelKind,
    params: &ModelParams,
    setup: &CuisineSetup,
    lexicon: &Lexicon,
    fitness: &FitnessTable,
    rng: &mut R,
) -> Vec<Recipe> {
    assert!(kind != ModelKind::Null, "use run_null for the null model");
    let n0 = params.resolve_n0(setup.phi).min(setup.target_recipes);
    let size = initial_size(params, setup, rng);
    let mut state = PoolState::initialize(
        &setup.ingredients,
        params.m,
        n0,
        size,
        setup.cuisine,
        lexicon,
        rng,
    );

    // Evolve until the pool reaches the empirical recipe count. Pool-growth
    // iterations do not add recipes (DESIGN.md interpretation note 2).
    while state.n() < setup.target_recipes {
        if state.partial() >= setup.phi || state.master_remaining() == 0 {
            let idx = state.pick_recipe(rng);
            let mut r = state.clone_recipe(idx);
            mutate(&mut r, kind, params.mutations, &state, lexicon, fitness, rng);
            state.push_recipe(r);
        } else {
            state.grow(rng, lexicon);
        }
    }
    state.into_recipes()
}

/// Initial recipe size under the configured size mode.
pub(crate) fn initial_size<R: Rng + ?Sized>(
    params: &ModelParams,
    setup: &CuisineSetup,
    rng: &mut R,
) -> usize {
    match &params.size_mode {
        SizeMode::Fixed => setup.rounded_size(),
        SizeMode::Empirical(sizes) if !sizes.is_empty() => {
            sizes[rng.random_range(0..sizes.len())]
        }
        SizeMode::Empirical(_) => setup.rounded_size(),
    }
}

/// Steps 3-4: attempt `m_mut` mutations on a copied recipe.
fn mutate<R: Rng + ?Sized>(
    recipe: &mut Recipe,
    kind: ModelKind,
    m_mut: usize,
    state: &PoolState,
    lexicon: &Lexicon,
    fitness: &FitnessTable,
    rng: &mut R,
) {
    for _ in 0..m_mut {
        if recipe.size() == 0 {
            return;
        }
        // Sample an ingredient i from r.
        let i = recipe.ingredients()[rng.random_range(0..recipe.size())];
        // Sample a replacement j per the policy.
        let j = match kind {
            ModelKind::CmR => Some(state.pick_active(rng)),
            ModelKind::CmC => state.pick_active_in_category(rng, lexicon.category(i)),
            ModelKind::CmM => {
                // "half the time the replacement ingredient j is chosen
                // from the same category ... and otherwise it is sampled
                // from all the available ingredients."
                if rng.random::<bool>() {
                    state.pick_active_in_category(rng, lexicon.category(i))
                } else {
                    Some(state.pick_active(rng))
                }
            }
            ModelKind::Null => unreachable!("null model never mutates"),
        };
        let Some(j) = j else { continue };
        // "if the fitness of j is greater than that of i, the former
        // replaces the latter" — skipped when j is already present, which
        // would collapse the recipe set (interpretation note 4).
        if fitness.fitness(j) > fitness.fitness(i) {
            recipe.replace(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuisine_data::CuisineId;
    use cuisine_lexicon::IngredientId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n_ingredients: usize, target: usize) -> CuisineSetup {
        let lex = Lexicon::standard();
        let ingredients: Vec<IngredientId> = lex.ids().take(n_ingredients).collect();
        let phi = n_ingredients as f64 / target as f64;
        CuisineSetup {
            cuisine: CuisineId(0),
            ingredients,
            mean_size: 9.0,
            target_recipes: target,
            phi,
            empirical_sizes: vec![7, 9, 11],
        }
    }

    #[test]
    fn produces_exactly_target_recipes() {
        let lex = Lexicon::standard();
        let s = setup(150, 400);
        let mut rng = StdRng::seed_from_u64(1);
        for kind in [ModelKind::CmR, ModelKind::CmC, ModelKind::CmM] {
            let params = ModelParams::paper(kind);
            let recipes = run_copy_mutate(kind, &params, &s, lex, &mut rng);
            assert_eq!(recipes.len(), 400, "{kind}");
        }
    }

    #[test]
    fn recipes_preserve_fixed_size() {
        let lex = Lexicon::standard();
        let s = setup(150, 300);
        let mut rng = StdRng::seed_from_u64(2);
        let recipes =
            run_copy_mutate(ModelKind::CmR, &ModelParams::paper(ModelKind::CmR), &s, lex, &mut rng);
        assert!(recipes.iter().all(|r| r.size() == 9), "mutation preserves recipe size");
    }

    #[test]
    fn recipes_are_sets_from_cuisine_ingredients() {
        let lex = Lexicon::standard();
        let s = setup(120, 250);
        let allowed: std::collections::HashSet<_> = s.ingredients.iter().copied().collect();
        let mut rng = StdRng::seed_from_u64(3);
        let recipes =
            run_copy_mutate(ModelKind::CmM, &ModelParams::paper(ModelKind::CmM), &s, lex, &mut rng);
        for r in &recipes {
            let mut seen = std::collections::HashSet::new();
            for ing in r.ingredients() {
                assert!(allowed.contains(ing), "foreign ingredient");
                assert!(seen.insert(*ing), "duplicate ingredient in a recipe");
            }
        }
    }

    #[test]
    fn empirical_size_mode_varies_sizes() {
        let lex = Lexicon::standard();
        let s = setup(150, 300);
        let params = ModelParams {
            size_mode: SizeMode::Empirical(vec![5, 9, 13]),
            ..ModelParams::paper(ModelKind::CmR)
        };
        let mut rng = StdRng::seed_from_u64(4);
        let recipes = run_copy_mutate(ModelKind::CmR, &params, &s, lex, &mut rng);
        // Initial size is drawn once per replicate; over many seeds sizes
        // vary. For a single replicate just check it's one of the samples.
        assert!(recipes.iter().all(|r| [5usize, 9, 13].contains(&r.size())));
    }

    #[test]
    fn cmc_replacement_preserves_category_histogram() {
        let lex = Lexicon::standard();
        let s = setup(200, 120);
        let mut rng = StdRng::seed_from_u64(5);
        let recipes =
            run_copy_mutate(ModelKind::CmC, &ModelParams::paper(ModelKind::CmC), &s, lex, &mut rng);
        // Under CM-C every replacement stays within category, so the
        // category histogram of each evolved recipe is reachable from some
        // initial recipe — strongest easily-checkable invariant: histogram
        // totals match recipe sizes.
        for r in &recipes {
            let h = r.category_histogram(lex);
            assert_eq!(h.iter().sum::<usize>(), r.size());
        }
    }

    #[test]
    fn mutation_moves_toward_higher_fitness() {
        let lex = Lexicon::standard();
        let s = setup(100, 50);
        let mut rng = StdRng::seed_from_u64(6);
        // Deterministic fitness = ingredient id (higher id, higher fitness).
        let values: Vec<f64> = (0..lex.len()).map(|i| i as f64 / lex.len() as f64).collect();
        let fitness = FitnessTable::from_values(values);
        let params = ModelParams { mutations: 50, ..ModelParams::paper(ModelKind::CmR) };
        let recipes =
            run_copy_mutate_with_fitness(ModelKind::CmR, &params, &s, lex, &fitness, &mut rng);
        // With heavy mutation pressure, late recipes should have higher
        // mean ingredient id than the global mean of the active pool.
        let late_mean: f64 = recipes
            .iter()
            .rev()
            .take(10)
            .flat_map(|r| r.ingredients().iter().map(|i| i.0 as f64))
            .sum::<f64>()
            / (10.0 * 9.0);
        let early_mean: f64 = recipes
            .iter()
            .take(10)
            .flat_map(|r| r.ingredients().iter().map(|i| i.0 as f64))
            .sum::<f64>()
            / (10.0 * 9.0);
        assert!(
            late_mean > early_mean,
            "fitness pressure should raise ids: early {early_mean} late {late_mean}"
        );
    }

    #[test]
    #[should_panic(expected = "use run_null")]
    fn null_kind_is_rejected() {
        let lex = Lexicon::standard();
        let s = setup(50, 20);
        let mut rng = StdRng::seed_from_u64(7);
        let _ = run_copy_mutate(ModelKind::Null, &ModelParams::paper(ModelKind::Null), &s, lex, &mut rng);
    }

    #[test]
    fn deterministic_under_seed() {
        let lex = Lexicon::standard();
        let s = setup(100, 150);
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            run_copy_mutate(ModelKind::CmR, &ModelParams::paper(ModelKind::CmR), &s, lex, &mut rng)
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn target_smaller_than_n0_yields_target() {
        let lex = Lexicon::standard();
        // phi = 50/5 = 10 -> n0 = 20/10 = 2, but clamp to target anyway.
        let s = setup(50, 5);
        let mut rng = StdRng::seed_from_u64(8);
        let recipes =
            run_copy_mutate(ModelKind::CmR, &ModelParams::paper(ModelKind::CmR), &s, lex, &mut rng);
        assert_eq!(recipes.len(), 5);
    }
}
