//! Ingredient fitness — Step 1 of Algorithm 1.
//!
//! "Each ingredient is assigned a 'fitness' value which is randomly sampled
//! from a Uniform(0, 1) distribution. Fitness can be interpreted as a
//! metric quantifying the worthiness of an ingredient based on intrinsic
//! properties such as cost, availability, and nutritional content."

use cuisine_lexicon::IngredientId;
use rand::{Rng, RngExt};

/// Fitness values for every ingredient, indexed by entity id.
#[derive(Debug, Clone)]
pub struct FitnessTable {
    values: Vec<f64>,
}

impl FitnessTable {
    /// Sample a fresh fitness table over `n_entities` ids from
    /// `Uniform(0, 1)`. Each replicate of the ensemble draws its own table.
    pub fn sample<R: Rng + ?Sized>(n_entities: usize, rng: &mut R) -> Self {
        let values = (0..n_entities).map(|_| rng.random::<f64>()).collect();
        FitnessTable { values }
    }

    /// Build from explicit values (tests, ablations with deterministic
    /// fitness).
    pub fn from_values(values: Vec<f64>) -> Self {
        FitnessTable { values }
    }

    /// Fitness of an ingredient.
    ///
    /// # Panics
    /// Panics for ids outside the table.
    pub fn fitness(&self, id: IngredientId) -> f64 {
        self.values[id.index()]
    }

    /// Number of entities covered.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sampled_fitness_is_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = FitnessTable::sample(500, &mut rng);
        assert_eq!(t.len(), 500);
        for i in 0..500 {
            let f = t.fitness(IngredientId(i as u16));
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let a = FitnessTable::sample(50, &mut StdRng::seed_from_u64(7));
        let b = FitnessTable::sample(50, &mut StdRng::seed_from_u64(7));
        for i in 0..50 {
            assert_eq!(a.fitness(IngredientId(i)), b.fitness(IngredientId(i)));
        }
    }

    #[test]
    fn mean_fitness_is_near_half() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000u16;
        let t = FitnessTable::sample(n as usize, &mut rng);
        let mean: f64 =
            (0..n).map(|i| t.fitness(IngredientId(i))).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn from_values_roundtrips() {
        let t = FitnessTable::from_values(vec![0.1, 0.9]);
        assert_eq!(t.fitness(IngredientId(0)), 0.1);
        assert_eq!(t.fitness(IngredientId(1)), 0.9);
    }
}
