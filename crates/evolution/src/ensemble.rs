//! Parallel replicate ensembles.
//!
//! "For normalization purposes, we create 100 such sets of random
//! copy-mutate recipes and study the aggregated statistics." Replicates
//! are embarrassingly parallel; each draws an independent, deterministic
//! sub-seed so results are identical regardless of thread count.

use cuisine_data::Recipe;
use cuisine_lexicon::Lexicon;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::copy_mutate::run_copy_mutate;
use crate::model::{CuisineSetup, ModelKind, ModelParams};
use crate::null_model::run_null;

/// Ensemble configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnsembleConfig {
    /// Number of replicate runs (paper: 100).
    pub replicates: usize,
    /// Master seed.
    pub seed: u64,
    /// Worker threads; `None` = available parallelism.
    pub threads: Option<usize>,
}

impl Default for EnsembleConfig {
    fn default() -> Self {
        EnsembleConfig { replicates: 100, seed: 0x00E5_017E, threads: None }
    }
}

/// Run one replicate of any model.
pub fn run_replicate(
    kind: ModelKind,
    params: &ModelParams,
    setup: &CuisineSetup,
    lexicon: &Lexicon,
    rng: &mut StdRng,
) -> Vec<Recipe> {
    match kind {
        ModelKind::Null => run_null(params, setup, lexicon, rng),
        _ => run_copy_mutate(kind, params, setup, lexicon, rng),
    }
}

/// Deterministic sub-seed for replicate `r` under master seed `seed`.
/// (SplitMix64 finalizer over the pair.)
pub fn replicate_seed(seed: u64, replicate: usize) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(replicate as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Run `config.replicates` replicates in parallel, mapping each replicate's
/// recipe pool through `map` (so large pools need not be kept alive).
/// Results are returned in replicate order.
pub fn run_ensemble_map<T, F>(
    kind: ModelKind,
    params: &ModelParams,
    setup: &CuisineSetup,
    lexicon: &Lexicon,
    config: &EnsembleConfig,
    map: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(Vec<Recipe>) -> T + Sync,
{
    assert!(config.replicates > 0, "need at least one replicate");
    let threads = config
        .threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        })
        .clamp(1, config.replicates);

    let mut out: Vec<Option<T>> = (0..config.replicates).map(|_| None).collect();
    let chunks: Vec<(usize, &mut [Option<T>])> = {
        // Round-robin would complicate write-back; contiguous chunks keep
        // the unsafe-free split simple. Seeds depend only on the replicate
        // index, so determinism is unaffected.
        let base = config.replicates / threads;
        let extra = config.replicates % threads;
        let mut rest: &mut [Option<T>] = &mut out;
        let mut start = 0;
        let mut acc = Vec::with_capacity(threads);
        for t in 0..threads {
            let len = base + usize::from(t < extra);
            let (head, tail) = rest.split_at_mut(len);
            acc.push((start, head));
            start += len;
            rest = tail;
        }
        acc
    };

    std::thread::scope(|scope| {
        for (start, slots) in chunks {
            let map = &map;
            scope.spawn(move || {
                for (offset, slot) in slots.iter_mut().enumerate() {
                    let r = start + offset;
                    let mut rng = StdRng::seed_from_u64(replicate_seed(config.seed, r));
                    let recipes = run_replicate(kind, params, setup, lexicon, &mut rng);
                    *slot = Some(map(recipes));
                }
            });
        }
    });

    out.into_iter()
        .map(|o| o.expect("every replicate slot filled"))
        .collect()
}

/// Convenience: run the ensemble and keep the raw recipe pools.
pub fn run_ensemble(
    kind: ModelKind,
    params: &ModelParams,
    setup: &CuisineSetup,
    lexicon: &Lexicon,
    config: &EnsembleConfig,
) -> Vec<Vec<Recipe>> {
    run_ensemble_map(kind, params, setup, lexicon, config, |r| r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuisine_data::CuisineId;
    use cuisine_lexicon::IngredientId;

    fn setup() -> CuisineSetup {
        let lex = Lexicon::standard();
        let ingredients: Vec<IngredientId> = lex.ids().take(80).collect();
        CuisineSetup {
            cuisine: CuisineId(0),
            ingredients,
            mean_size: 8.0,
            target_recipes: 120,
            phi: 80.0 / 120.0,
            empirical_sizes: vec![],
        }
    }

    #[test]
    fn ensemble_produces_requested_replicates() {
        let lex = Lexicon::standard();
        let config = EnsembleConfig { replicates: 8, seed: 1, threads: Some(3) };
        let pools = run_ensemble(
            ModelKind::CmR,
            &ModelParams::paper(ModelKind::CmR),
            &setup(),
            lex,
            &config,
        );
        assert_eq!(pools.len(), 8);
        assert!(pools.iter().all(|p| p.len() == 120));
    }

    #[test]
    fn results_independent_of_thread_count() {
        let lex = Lexicon::standard();
        let s = setup();
        let run = |threads: usize| {
            let config = EnsembleConfig { replicates: 6, seed: 9, threads: Some(threads) };
            run_ensemble(ModelKind::CmM, &ModelParams::paper(ModelKind::CmM), &s, lex, &config)
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn replicates_differ_from_each_other() {
        let lex = Lexicon::standard();
        let config = EnsembleConfig { replicates: 2, seed: 2, threads: Some(1) };
        let pools = run_ensemble(
            ModelKind::Null,
            &ModelParams::paper(ModelKind::Null),
            &setup(),
            lex,
            &config,
        );
        assert_ne!(pools[0], pools[1]);
    }

    #[test]
    fn map_is_applied_per_replicate() {
        let lex = Lexicon::standard();
        let config = EnsembleConfig { replicates: 5, seed: 3, threads: Some(2) };
        let counts = run_ensemble_map(
            ModelKind::CmR,
            &ModelParams::paper(ModelKind::CmR),
            &setup(),
            lex,
            &config,
            |recipes| recipes.len(),
        );
        assert_eq!(counts, vec![120; 5]);
    }

    #[test]
    fn replicate_seeds_are_distinct() {
        let mut seeds: Vec<u64> = (0..1000).map(|r| replicate_seed(42, r)).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 1000);
    }

    #[test]
    #[should_panic(expected = "at least one replicate")]
    fn zero_replicates_rejected() {
        let lex = Lexicon::standard();
        let config = EnsembleConfig { replicates: 0, seed: 1, threads: None };
        let _ = run_ensemble(
            ModelKind::CmR,
            &ModelParams::paper(ModelKind::CmR),
            &setup(),
            lex,
            &config,
        );
    }
}
