//! Parallel replicate ensembles.
//!
//! "For normalization purposes, we create 100 such sets of random
//! copy-mutate recipes and study the aggregated statistics." Replicates
//! are embarrassingly parallel; each draws an independent, deterministic
//! sub-seed so results are identical regardless of thread count.

use cuisine_data::Recipe;
use cuisine_lexicon::Lexicon;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::copy_mutate::run_copy_mutate;
use crate::model::{CuisineSetup, ModelKind, ModelParams};
use crate::null_model::run_null;

/// Ensemble configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnsembleConfig {
    /// Number of replicate runs (paper: 100).
    pub replicates: usize,
    /// Master seed.
    pub seed: u64,
    /// Worker threads; `None` = available parallelism.
    pub threads: Option<usize>,
}

impl Default for EnsembleConfig {
    fn default() -> Self {
        EnsembleConfig { replicates: 100, seed: 0x00E5_017E, threads: None }
    }
}

/// Run one replicate of any model.
pub fn run_replicate(
    kind: ModelKind,
    params: &ModelParams,
    setup: &CuisineSetup,
    lexicon: &Lexicon,
    rng: &mut StdRng,
) -> Vec<Recipe> {
    match kind {
        ModelKind::Null => run_null(params, setup, lexicon, rng),
        _ => run_copy_mutate(kind, params, setup, lexicon, rng),
    }
}

/// Deterministic sub-seed for replicate `r` under master seed `seed`.
/// (SplitMix64 finalizer over the pair.)
pub fn replicate_seed(seed: u64, replicate: usize) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(replicate as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Run `config.replicates` replicates in parallel, mapping each replicate's
/// recipe pool through `map` (so large pools need not be kept alive).
/// Results are returned in replicate order.
///
/// Fan-out rides on [`cuisine_exec::par_map_range`]: contiguous chunks over
/// scoped threads, stable output order. Seeds depend only on the replicate
/// index (never on worker identity), so results are identical for any
/// thread count.
pub fn run_ensemble_map<T, F>(
    kind: ModelKind,
    params: &ModelParams,
    setup: &CuisineSetup,
    lexicon: &Lexicon,
    config: &EnsembleConfig,
    map: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(Vec<Recipe>) -> T + Sync,
{
    assert!(config.replicates > 0, "need at least one replicate");
    cuisine_exec::par_map_range(config.replicates, config.threads, |r| {
        let mut rng = StdRng::seed_from_u64(replicate_seed(config.seed, r));
        map(run_replicate(kind, params, setup, lexicon, &mut rng))
    })
}

/// Convenience: run the ensemble and keep the raw recipe pools.
pub fn run_ensemble(
    kind: ModelKind,
    params: &ModelParams,
    setup: &CuisineSetup,
    lexicon: &Lexicon,
    config: &EnsembleConfig,
) -> Vec<Vec<Recipe>> {
    run_ensemble_map(kind, params, setup, lexicon, config, |r| r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuisine_data::CuisineId;
    use cuisine_lexicon::IngredientId;

    fn setup() -> CuisineSetup {
        let lex = Lexicon::standard();
        let ingredients: Vec<IngredientId> = lex.ids().take(80).collect();
        CuisineSetup {
            cuisine: CuisineId(0),
            ingredients,
            mean_size: 8.0,
            target_recipes: 120,
            phi: 80.0 / 120.0,
            empirical_sizes: vec![],
        }
    }

    #[test]
    fn ensemble_produces_requested_replicates() {
        let lex = Lexicon::standard();
        let config = EnsembleConfig { replicates: 8, seed: 1, threads: Some(3) };
        let pools = run_ensemble(
            ModelKind::CmR,
            &ModelParams::paper(ModelKind::CmR),
            &setup(),
            lex,
            &config,
        );
        assert_eq!(pools.len(), 8);
        assert!(pools.iter().all(|p| p.len() == 120));
    }

    #[test]
    fn results_independent_of_thread_count() {
        let lex = Lexicon::standard();
        let s = setup();
        let run = |threads: usize| {
            let config = EnsembleConfig { replicates: 6, seed: 9, threads: Some(threads) };
            run_ensemble(ModelKind::CmM, &ModelParams::paper(ModelKind::CmM), &s, lex, &config)
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn replicates_differ_from_each_other() {
        let lex = Lexicon::standard();
        let config = EnsembleConfig { replicates: 2, seed: 2, threads: Some(1) };
        let pools = run_ensemble(
            ModelKind::Null,
            &ModelParams::paper(ModelKind::Null),
            &setup(),
            lex,
            &config,
        );
        assert_ne!(pools[0], pools[1]);
    }

    #[test]
    fn map_is_applied_per_replicate() {
        let lex = Lexicon::standard();
        let config = EnsembleConfig { replicates: 5, seed: 3, threads: Some(2) };
        let counts = run_ensemble_map(
            ModelKind::CmR,
            &ModelParams::paper(ModelKind::CmR),
            &setup(),
            lex,
            &config,
            |recipes| recipes.len(),
        );
        assert_eq!(counts, vec![120; 5]);
    }

    #[test]
    fn replicate_seeds_are_distinct() {
        let mut seeds: Vec<u64> = (0..1000).map(|r| replicate_seed(42, r)).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 1000);
    }

    #[test]
    fn replicate_seeds_are_distinct_across_master_seeds() {
        // Nearby master seeds (the common case: 42, 43, ...) must not
        // alias each other's replicate streams: the SplitMix64 finalizer
        // decorrelates (seed, replicate) pairs even though the pre-mix
        // input is linear in both. 32 masters × 128 replicates = 4096
        // pairwise-distinct sub-seeds.
        let mut seeds: Vec<u64> = (0..32u64)
            .flat_map(|master| (0..128).map(move |r| replicate_seed(master, r)))
            .collect();
        let n = seeds.len();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), n, "replicate seeds collided across masters");
    }

    #[test]
    fn replicate_seed_is_pure() {
        assert_eq!(replicate_seed(7, 3), replicate_seed(7, 3));
        assert_ne!(replicate_seed(7, 3), replicate_seed(8, 3));
        assert_ne!(replicate_seed(7, 3), replicate_seed(7, 4));
    }

    #[test]
    fn thread_overcommit_is_clamped_and_value_neutral() {
        // threads ≫ replicates: the exec layer clamps worker count to the
        // job count; results still match the sequential run exactly.
        let lex = Lexicon::standard();
        let s = setup();
        let run = |threads: Option<usize>| {
            let config = EnsembleConfig { replicates: 3, seed: 5, threads };
            run_ensemble(ModelKind::CmC, &ModelParams::paper(ModelKind::CmC), &s, lex, &config)
        };
        let sequential = run(Some(1));
        assert_eq!(sequential.len(), 3);
        assert_eq!(run(Some(64)), sequential);
        assert_eq!(run(None), sequential);
    }

    #[test]
    fn zero_threads_means_sequential() {
        // `Some(0)` is not an error: it is clamped up to one worker.
        let lex = Lexicon::standard();
        let s = setup();
        let run = |threads: Option<usize>| {
            let config = EnsembleConfig { replicates: 2, seed: 11, threads };
            run_ensemble(ModelKind::CmR, &ModelParams::paper(ModelKind::CmR), &s, lex, &config)
        };
        assert_eq!(run(Some(0)), run(Some(1)));
    }

    #[test]
    #[should_panic(expected = "at least one replicate")]
    fn zero_replicates_rejected() {
        let lex = Lexicon::standard();
        let config = EnsembleConfig { replicates: 0, seed: 1, threads: None };
        let _ = run_ensemble(
            ModelKind::CmR,
            &ModelParams::paper(ModelKind::CmR),
            &setup(),
            lex,
            &config,
        );
    }
}
