//! Horizontal transmission — the Section VII future-work extension.
//!
//! "it is highly unlikely that cuisines evolved in isolation. Analogous to
//! languages, the propagation of culinary habits would have been both
//! vertical (time) as well as horizontal (regions)."
//!
//! [`run_horizontal`] co-evolves all cuisines at once: each keeps its own
//! Algorithm-1 pools, but with probability `transfer_rate` a mutation draws
//! its replacement ingredient from a *neighbor* cuisine's active pool
//! instead of the local one (and the borrowed ingredient joins the local
//! pool — a culinary loanword). Neighborhoods come from a configurable
//! adjacency; [`geo_neighbors`] provides a plausible geographic default.

use cuisine_data::{CuisineId, Recipe};
use cuisine_lexicon::Lexicon;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::fitness::FitnessTable;
use crate::model::{CuisineSetup, ModelKind, ModelParams};
use crate::pool::PoolState;

/// Configuration for the horizontal-transmission run.
#[derive(Debug, Clone)]
pub struct HorizontalConfig {
    /// Base copy-mutate variant used for local mutations (CM-R/CM-C/CM-M).
    pub base: ModelKind,
    /// Base model parameters.
    pub params: ModelParams,
    /// Probability that a mutation's replacement is drawn from a neighbor
    /// cuisine's pool instead of the local one. 0 reduces to independent
    /// evolution.
    pub transfer_rate: f64,
    /// Adjacency list: `neighbors[c]` = cuisine indices adjacent to `c`.
    pub neighbors: Vec<Vec<usize>>,
    /// Master seed.
    pub seed: u64,
}

impl HorizontalConfig {
    /// Paper-parameter CM-R base with geographic neighbors.
    pub fn paper(transfer_rate: f64, seed: u64) -> Self {
        HorizontalConfig {
            base: ModelKind::CmR,
            params: ModelParams::paper(ModelKind::CmR),
            transfer_rate,
            neighbors: geo_neighbors(),
            seed,
        }
    }
}

/// A plausible geographic adjacency over the paper's 25 regions, symmetric
/// by construction. Indices follow `cuisine_data::CUISINES` order.
pub fn geo_neighbors() -> Vec<Vec<usize>> {
    // Adjacent region codes; parsed into indices below.
    const EDGES: &[(&str, &str)] = &[
        // Europe.
        ("IRL", "UK"),
        ("UK", "FRA"),
        ("UK", "BN"),
        ("BN", "FRA"),
        ("BN", "DACH"),
        ("FRA", "DACH"),
        ("FRA", "ITA"),
        ("FRA", "SP"),
        ("ITA", "DACH"),
        ("ITA", "GRC"),
        ("DACH", "EE"),
        ("DACH", "SCND"),
        ("EE", "SCND"),
        ("EE", "GRC"),
        ("GRC", "ME"),
        ("SP", "ITA"),
        // Mediterranean / Africa / Middle East.
        ("SP", "AFR"),
        ("AFR", "ME"),
        ("AFR", "GRC"),
        ("ME", "INSC"),
        // Asia.
        ("INSC", "CHN"),
        ("INSC", "SEA"),
        ("INSC", "THA"),
        ("CHN", "KOR"),
        ("CHN", "JPN"),
        ("CHN", "SEA"),
        ("KOR", "JPN"),
        ("SEA", "THA"),
        ("SEA", "ANZ"),
        // Americas.
        ("USA", "CAN"),
        ("USA", "MEX"),
        ("MEX", "CAM"),
        ("CAM", "SAM"),
        ("CAM", "CBN"),
        ("CBN", "USA"),
        ("CBN", "SAM"),
        ("SAM", "SP"),
        // Colonial-era links.
        ("UK", "USA"),
        ("UK", "ANZ"),
        ("UK", "CAN"),
        ("SP", "MEX"),
    ];
    let mut out = vec![Vec::new(); cuisine_data::CUISINE_COUNT];
    for &(a, b) in EDGES {
        let ia = a.parse::<CuisineId>().expect("known code").index();
        let ib = b.parse::<CuisineId>().expect("known code").index();
        if !out[ia].contains(&ib) {
            out[ia].push(ib);
        }
        if !out[ib].contains(&ia) {
            out[ib].push(ia);
        }
    }
    out
}

/// Co-evolve a set of cuisines with horizontal transfer. Returns one evolved
/// recipe pool per input setup, in input order.
///
/// The scheduler interleaves cuisines proportionally to their remaining
/// targets so all pools grow together (a recipe "era" at a time), which is
/// what makes borrowing meaningful: neighbors lend from their
/// *contemporaneous* pools.
///
/// # Panics
/// Panics when `setups` is empty, when `transfer_rate` is outside `[0, 1]`,
/// or when `config.base` is the null model.
pub fn run_horizontal(
    setups: &[CuisineSetup],
    lexicon: &Lexicon,
    config: &HorizontalConfig,
) -> Vec<Vec<Recipe>> {
    assert!(!setups.is_empty(), "need at least one cuisine");
    assert!(
        (0.0..=1.0).contains(&config.transfer_rate),
        "transfer rate must be in [0, 1]"
    );
    assert!(config.base != ModelKind::Null, "horizontal transfer needs a copy-mutate base");

    let mut rng = StdRng::seed_from_u64(config.seed);
    let fitness = FitnessTable::sample(lexicon.len(), &mut rng);

    // Initialize one pool per cuisine.
    let mut states: Vec<PoolState> = setups
        .iter()
        .map(|s| {
            let n0 = config.params.resolve_n0(s.phi).min(s.target_recipes);
            PoolState::initialize(
                &s.ingredients,
                config.params.m,
                n0,
                s.rounded_size(),
                s.cuisine,
                lexicon,
                &mut rng,
            )
        })
        .collect();

    // Map cuisine index -> position in `setups`, for neighbor lookups.
    let mut position_of = vec![usize::MAX; cuisine_data::CUISINE_COUNT];
    for (pos, s) in setups.iter().enumerate() {
        position_of[s.cuisine.index()] = pos;
    }

    // Round-robin until every cuisine reaches its target.
    loop {
        let mut progressed = false;
        for i in 0..states.len() {
            if states[i].n() >= setups[i].target_recipes {
                continue;
            }
            progressed = true;
            if states[i].partial() >= setups[i].phi || states[i].master_remaining() == 0 {
                evolve_one(i, &mut states, setups, &position_of, lexicon, &fitness, config, &mut rng);
            } else {
                states[i].grow(&mut rng, lexicon);
            }
        }
        if !progressed {
            break;
        }
    }
    states.into_iter().map(PoolState::into_recipes).collect()
}

/// One mutate-and-add step for cuisine `i`, possibly borrowing replacements
/// from a neighbor's pool.
#[allow(clippy::too_many_arguments)]
fn evolve_one(
    i: usize,
    states: &mut [PoolState],
    setups: &[CuisineSetup],
    position_of: &[usize],
    lexicon: &Lexicon,
    fitness: &FitnessTable,
    config: &HorizontalConfig,
    rng: &mut StdRng,
) {
    let idx = states[i].pick_recipe(rng);
    let mut r = states[i].clone_recipe(idx);

    // Live neighbor positions of cuisine i.
    let cuisine_idx = setups[i].cuisine.index();
    let neighbor_positions: Vec<usize> = config
        .neighbors
        .get(cuisine_idx)
        .map(|ns| {
            ns.iter()
                .filter_map(|&c| {
                    let p = position_of[c];
                    (p != usize::MAX).then_some(p)
                })
                .collect()
        })
        .unwrap_or_default();

    for _ in 0..config.params.mutations {
        if r.size() == 0 {
            break;
        }
        let victim = r.ingredients()[rng.random_range(0..r.size())];
        let borrow = !neighbor_positions.is_empty() && rng.random::<f64>() < config.transfer_rate;
        let source = if borrow {
            neighbor_positions[rng.random_range(0..neighbor_positions.len())]
        } else {
            i
        };
        let replacement = match config.base {
            ModelKind::CmR => Some(states[source].pick_active(rng)),
            ModelKind::CmC => {
                states[source].pick_active_in_category(rng, lexicon.category(victim))
            }
            ModelKind::CmM => {
                if rng.random::<bool>() {
                    states[source].pick_active_in_category(rng, lexicon.category(victim))
                } else {
                    Some(states[source].pick_active(rng))
                }
            }
            ModelKind::Null => unreachable!("guarded in run_horizontal"),
        };
        let Some(j) = replacement else { continue };
        if fitness.fitness(j) > fitness.fitness(victim) {
            r.replace(victim, j);
        }
    }
    states[i].push_recipe(r);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuisine_lexicon::IngredientId;

    fn setups(k: usize, per_cuisine_ings: usize, target: usize) -> Vec<CuisineSetup> {
        let lex = Lexicon::standard();
        (0..k)
            .map(|c| {
                // Disjoint vocabularies so borrowed ingredients are
                // detectable.
                let ingredients: Vec<IngredientId> = lex
                    .ids()
                    .skip(c * per_cuisine_ings)
                    .take(per_cuisine_ings)
                    .collect();
                CuisineSetup {
                    cuisine: CuisineId(c as u8),
                    ingredients: ingredients.clone(),
                    mean_size: 6.0,
                    target_recipes: target,
                    phi: per_cuisine_ings as f64 / target as f64,
                    empirical_sizes: vec![],
                }
            })
            .collect()
    }

    fn chain_neighbors(k: usize) -> Vec<Vec<usize>> {
        let mut n = vec![Vec::new(); cuisine_data::CUISINE_COUNT];
        for c in 0..k.saturating_sub(1) {
            n[c].push(c + 1);
            n[c + 1].push(c);
        }
        n
    }

    #[test]
    fn geo_neighbors_are_symmetric_and_connected() {
        let n = geo_neighbors();
        assert_eq!(n.len(), 25);
        for (a, ns) in n.iter().enumerate() {
            assert!(!ns.is_empty(), "cuisine {a} isolated");
            for &b in ns {
                assert!(n[b].contains(&a), "edge {a}-{b} not symmetric");
            }
        }
        // Connectivity via BFS from node 0.
        let mut seen = [false; 25];
        let mut queue = Vec::from([0usize]);
        seen[0] = true;
        while let Some(c) = queue.pop() {
            for &b in &n[c] {
                if !seen[b] {
                    seen[b] = true;
                    queue.push(b);
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "adjacency graph is disconnected");
    }

    #[test]
    fn zero_transfer_keeps_vocabularies_disjoint() {
        let lex = Lexicon::standard();
        let s = setups(3, 40, 60);
        let config = HorizontalConfig {
            transfer_rate: 0.0,
            neighbors: chain_neighbors(3),
            seed: 1,
            ..HorizontalConfig::paper(0.0, 1)
        };
        let pools = run_horizontal(&s, lex, &config);
        assert_eq!(pools.len(), 3);
        for (c, pool) in pools.iter().enumerate() {
            assert_eq!(pool.len(), 60);
            let allowed: std::collections::HashSet<_> =
                s[c].ingredients.iter().copied().collect();
            for r in pool {
                for ing in r.ingredients() {
                    assert!(allowed.contains(ing), "cuisine {c} leaked without transfer");
                }
            }
        }
    }

    #[test]
    fn positive_transfer_borrows_neighbor_ingredients() {
        let lex = Lexicon::standard();
        let s = setups(3, 40, 120);
        let config = HorizontalConfig {
            transfer_rate: 0.5,
            neighbors: chain_neighbors(3),
            seed: 2,
            ..HorizontalConfig::paper(0.5, 2)
        };
        let pools = run_horizontal(&s, lex, &config);
        let own: Vec<std::collections::HashSet<_>> = s
            .iter()
            .map(|s| s.ingredients.iter().copied().collect())
            .collect();
        let borrowed: usize = pools
            .iter()
            .enumerate()
            .map(|(c, pool)| {
                pool.iter()
                    .flat_map(|r| r.ingredients())
                    .filter(|ing| !own[c].contains(ing))
                    .count()
            })
            .sum();
        assert!(borrowed > 0, "transfer rate 0.5 never borrowed anything");
    }

    #[test]
    fn borrowing_respects_adjacency() {
        let lex = Lexicon::standard();
        // Chain 0-1-2: cuisine 0 may borrow from 1 but never directly
        // from 2... except via 1's pool after 1 borrowed from 2. Use a
        // 2-cuisine setup with an isolated third to test strict adjacency.
        let s = setups(3, 40, 100);
        let mut neighbors = vec![Vec::new(); cuisine_data::CUISINE_COUNT];
        neighbors[0].push(1);
        neighbors[1].push(0);
        // Cuisine 2 is isolated.
        let config = HorizontalConfig {
            transfer_rate: 0.6,
            neighbors,
            seed: 3,
            ..HorizontalConfig::paper(0.6, 3)
        };
        let pools = run_horizontal(&s, lex, &config);
        let own2: std::collections::HashSet<_> = s[2].ingredients.iter().copied().collect();
        for r in &pools[2] {
            for ing in r.ingredients() {
                assert!(own2.contains(ing), "isolated cuisine borrowed");
            }
        }
        // And nothing of cuisine 2's private vocabulary shows up elsewhere.
        for pool in &pools[..2] {
            for r in pool {
                for ing in r.ingredients() {
                    assert!(!own2.contains(ing), "cuisine 2 vocabulary leaked out");
                }
            }
        }
    }

    #[test]
    fn transfer_increases_vocabulary_overlap() {
        let lex = Lexicon::standard();
        let s = setups(2, 50, 150);
        let overlap = |rate: f64, seed: u64| -> usize {
            let config = HorizontalConfig {
                transfer_rate: rate,
                neighbors: chain_neighbors(2),
                seed,
                ..HorizontalConfig::paper(rate, seed)
            };
            let pools = run_horizontal(&s, lex, &config);
            let used: Vec<std::collections::HashSet<_>> = pools
                .iter()
                .map(|p| p.iter().flat_map(|r| r.ingredients().iter().copied()).collect())
                .collect();
            used[0].intersection(&used[1]).count()
        };
        // Same seeds; higher rate, more shared vocabulary.
        assert!(overlap(0.0, 9) == 0);
        assert!(overlap(0.6, 9) > overlap(0.1, 9));
    }

    #[test]
    fn deterministic_under_seed() {
        let lex = Lexicon::standard();
        let s = setups(2, 30, 50);
        let run = |seed| {
            let config = HorizontalConfig {
                transfer_rate: 0.3,
                neighbors: chain_neighbors(2),
                seed,
                ..HorizontalConfig::paper(0.3, seed)
            };
            run_horizontal(&s, lex, &config)
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    #[should_panic(expected = "copy-mutate base")]
    fn null_base_is_rejected() {
        let lex = Lexicon::standard();
        let s = setups(1, 30, 10);
        let config = HorizontalConfig {
            base: ModelKind::Null,
            params: ModelParams::paper(ModelKind::Null),
            transfer_rate: 0.1,
            neighbors: geo_neighbors(),
            seed: 1,
        };
        let _ = run_horizontal(&s, lex, &config);
    }
}
