//! Ingredient- and recipe-pool bookkeeping for Algorithm 1.
//!
//! The algorithm maintains a master ingredient list `I`, an active
//! ingredient pool `I₀` (size `m`), and a recipe pool `R₀` (size `n`).
//! Each iteration either evolves a recipe (when `∂ = m/n ≥ φ`) or moves a
//! random ingredient from `I` into `I₀` (pool growth). [`PoolState`]
//! encapsulates the bookkeeping, with a per-category index of the active
//! pool for the CM-C/CM-M replacement policies.

use cuisine_data::{CuisineId, Recipe};
use cuisine_lexicon::{Category, IngredientId, Lexicon};
use cuisine_stats::sampling::sample_without_replacement;
use rand::{Rng, RngExt};

/// The evolving state of Algorithm 1.
#[derive(Debug, Clone)]
pub struct PoolState {
    /// Master list `I` minus everything already moved to the active pool
    /// (the corrected listing's `I ← I − I₀` / `I ← I − p`).
    master: Vec<IngredientId>,
    /// The active pool `I₀`.
    active: Vec<IngredientId>,
    /// Active-pool members partitioned by category (parallel index for the
    /// category-constrained replacement policies).
    active_by_category: Vec<Vec<IngredientId>>,
    /// The recipe pool `R₀`.
    recipes: Vec<Recipe>,
    /// Which cuisine is being modeled (recipes are tagged with it).
    cuisine: CuisineId,
}

impl PoolState {
    /// Initialize the pools — Steps 1-2 of Algorithm 1.
    ///
    /// Samples `m` ingredients (without replacement) from `ingredients`
    /// into the active pool, then seeds `n0` recipes of `s̄ = recipe_size`
    /// ingredients each, sampled uniformly without replacement from the
    /// active pool.
    ///
    /// `m` is clamped to the available ingredient count and `recipe_size`
    /// to the active pool size, so degenerate cuisines still initialize.
    ///
    /// # Panics
    /// Panics when `ingredients` is empty or `n0` is zero.
    pub fn initialize<R: Rng + ?Sized>(
        ingredients: &[IngredientId],
        m: usize,
        n0: usize,
        recipe_size: usize,
        cuisine: CuisineId,
        lexicon: &Lexicon,
        rng: &mut R,
    ) -> Self {
        assert!(!ingredients.is_empty(), "cannot evolve a cuisine with no ingredients");
        assert!(n0 > 0, "initial recipe pool must be non-empty");
        let m = m.min(ingredients.len()).max(1);

        let chosen = sample_without_replacement(rng, ingredients.len(), m);
        let mut in_active = vec![false; ingredients.len()];
        let mut active = Vec::with_capacity(m);
        for idx in chosen {
            in_active[idx] = true;
            active.push(ingredients[idx]);
        }
        let master: Vec<IngredientId> = ingredients
            .iter()
            .enumerate()
            .filter(|&(i, _)| !in_active[i])
            .map(|(_, &id)| id)
            .collect();

        let mut active_by_category: Vec<Vec<IngredientId>> =
            vec![Vec::new(); Category::COUNT];
        for &id in &active {
            active_by_category[lexicon.category(id).index()].push(id);
        }

        let size = recipe_size.min(active.len()).max(1);
        let recipes = (0..n0)
            .map(|_| {
                let picks = sample_without_replacement(rng, active.len(), size);
                Recipe::new(cuisine, picks.into_iter().map(|i| active[i]).collect())
            })
            .collect();

        PoolState { master, active, active_by_category, recipes, cuisine }
    }

    /// `m`: size of the active ingredient pool.
    pub fn m(&self) -> usize {
        self.active.len()
    }

    /// `n`: size of the recipe pool.
    pub fn n(&self) -> usize {
        self.recipes.len()
    }

    /// `∂ = m / n`.
    pub fn partial(&self) -> f64 {
        self.m() as f64 / self.n() as f64
    }

    /// Ingredients still in the master list.
    pub fn master_remaining(&self) -> usize {
        self.master.len()
    }

    /// The cuisine recipes are tagged with.
    pub fn cuisine(&self) -> CuisineId {
        self.cuisine
    }

    /// The active pool.
    pub fn active(&self) -> &[IngredientId] {
        &self.active
    }

    /// Active-pool members of one category.
    pub fn active_in_category(&self, cat: Category) -> &[IngredientId] {
        &self.active_by_category[cat.index()]
    }

    /// The recipe pool.
    pub fn recipes(&self) -> &[Recipe] {
        &self.recipes
    }

    /// Consume the state, returning the recipe pool.
    pub fn into_recipes(self) -> Vec<Recipe> {
        self.recipes
    }

    /// Uniformly pick a recipe index from the pool.
    pub fn pick_recipe<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        rng.random_range(0..self.recipes.len())
    }

    /// Clone the recipe at `idx` (the "mother recipe" copy step).
    pub fn clone_recipe(&self, idx: usize) -> Recipe {
        self.recipes[idx].clone()
    }

    /// Add an evolved recipe to the pool (`R₀ ← R₀ + r; n ← n + 1`).
    pub fn push_recipe(&mut self, recipe: Recipe) {
        self.recipes.push(recipe);
    }

    /// Pool growth — move one uniformly-chosen ingredient from `I` to `I₀`
    /// (`I₀ ← I₀ + p; m ← m + 1; I ← I − p`). Returns `false` when the
    /// master list is exhausted.
    pub fn grow<R: Rng + ?Sized>(&mut self, rng: &mut R, lexicon: &Lexicon) -> bool {
        if self.master.is_empty() {
            return false;
        }
        let idx = rng.random_range(0..self.master.len());
        let id = self.master.swap_remove(idx);
        self.active.push(id);
        self.active_by_category[lexicon.category(id).index()].push(id);
        true
    }

    /// Uniformly pick an ingredient from the active pool.
    pub fn pick_active<R: Rng + ?Sized>(&self, rng: &mut R) -> IngredientId {
        self.active[rng.random_range(0..self.active.len())]
    }

    /// Uniformly pick an active-pool ingredient of the given category.
    /// Returns `None` when the category has no active members.
    pub fn pick_active_in_category<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        cat: Category,
    ) -> Option<IngredientId> {
        let bucket = &self.active_by_category[cat.index()];
        if bucket.is_empty() {
            return None;
        }
        Some(bucket[rng.random_range(0..bucket.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(m: usize, n0: usize, size: usize) -> PoolState {
        let lex = Lexicon::standard();
        let ingredients: Vec<IngredientId> = lex.ids().take(100).collect();
        let mut rng = StdRng::seed_from_u64(5);
        PoolState::initialize(&ingredients, m, n0, size, CuisineId(0), lex, &mut rng)
    }

    #[test]
    fn initialization_sets_pool_sizes() {
        let s = setup(20, 7, 9);
        assert_eq!(s.m(), 20);
        assert_eq!(s.n(), 7);
        assert_eq!(s.master_remaining(), 80);
        assert!((s.partial() - 20.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn initial_recipes_draw_from_active_pool_only() {
        let s = setup(20, 10, 9);
        let active: std::collections::HashSet<_> = s.active().iter().copied().collect();
        for r in s.recipes() {
            assert_eq!(r.size(), 9);
            for ing in r.ingredients() {
                assert!(active.contains(ing));
            }
        }
    }

    #[test]
    fn category_index_partitions_active_pool() {
        let s = setup(30, 3, 5);
        let total: usize = Category::ALL
            .iter()
            .map(|&c| s.active_in_category(c).len())
            .sum();
        assert_eq!(total, s.m());
    }

    #[test]
    fn growth_moves_master_to_active() {
        let lex = Lexicon::standard();
        let mut s = setup(20, 5, 9);
        let mut rng = StdRng::seed_from_u64(6);
        assert!(s.grow(&mut rng, lex));
        assert_eq!(s.m(), 21);
        assert_eq!(s.master_remaining(), 79);
        // Category index stays consistent.
        let total: usize = Category::ALL
            .iter()
            .map(|&c| s.active_in_category(c).len())
            .sum();
        assert_eq!(total, 21);
    }

    #[test]
    fn growth_exhausts_master_list() {
        let lex = Lexicon::standard();
        let ingredients: Vec<IngredientId> = lex.ids().take(25).collect();
        let mut rng = StdRng::seed_from_u64(7);
        let mut s =
            PoolState::initialize(&ingredients, 20, 2, 5, CuisineId(0), lex, &mut rng);
        for _ in 0..5 {
            assert!(s.grow(&mut rng, lex));
        }
        assert!(!s.grow(&mut rng, lex), "master exhausted");
        assert_eq!(s.m(), 25);
    }

    #[test]
    fn m_clamped_to_available_ingredients() {
        let lex = Lexicon::standard();
        let ingredients: Vec<IngredientId> = lex.ids().take(8).collect();
        let mut rng = StdRng::seed_from_u64(8);
        let s = PoolState::initialize(&ingredients, 20, 2, 9, CuisineId(0), lex, &mut rng);
        assert_eq!(s.m(), 8);
        assert_eq!(s.master_remaining(), 0);
        // Recipe size clamped to the pool.
        assert!(s.recipes().iter().all(|r| r.size() == 8));
    }

    #[test]
    fn pick_active_in_empty_category_is_none() {
        let lex = Lexicon::standard();
        // Restrict to spice ids only; dairy bucket must be empty.
        let spices: Vec<IngredientId> =
            lex.ids_in_category(Category::Spice).iter().copied().take(30).collect();
        let mut rng = StdRng::seed_from_u64(9);
        let s = PoolState::initialize(&spices, 10, 2, 4, CuisineId(0), lex, &mut rng);
        assert!(s.pick_active_in_category(&mut rng, Category::Dairy).is_none());
        assert!(s.pick_active_in_category(&mut rng, Category::Spice).is_some());
    }

    #[test]
    #[should_panic(expected = "no ingredients")]
    fn rejects_empty_ingredient_list() {
        let lex = Lexicon::standard();
        let mut rng = StdRng::seed_from_u64(10);
        let _ = PoolState::initialize(&[], 20, 2, 9, CuisineId(0), lex, &mut rng);
    }
}
