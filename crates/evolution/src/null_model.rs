//! The Null Model (NM) — the control of Section V.
//!
//! "we implemented a Null Model (NM) wherein there are no mutations and a
//! new recipe is created at each iteration by randomly sampling s̄
//! ingredients from the ingredient pool (I). All the other steps remain as
//! it is."
//!
//! The two sentences pull in different directions: "(I)" names the master
//! list, while "all the other steps remain" keeps the I₀ growth dynamics
//! meaningful only if sampling draws from I₀. We default to the active
//! pool I₀ and expose the literal-master reading behind
//! [`ModelParams::null_samples_master`] (see DESIGN.md interpretation
//! notes).

use cuisine_data::Recipe;
use cuisine_lexicon::Lexicon;
use cuisine_stats::sampling::sample_without_replacement;
use rand::{Rng, RngExt};

use crate::copy_mutate::initial_size;
use crate::model::{CuisineSetup, ModelParams, SizeMode};
use crate::pool::PoolState;

/// Run one replicate of the null model. Returns `setup.target_recipes`
/// recipes.
///
/// # Panics
/// Panics on an empty ingredient list.
pub fn run_null<R: Rng + ?Sized>(
    params: &ModelParams,
    setup: &CuisineSetup,
    lexicon: &Lexicon,
    rng: &mut R,
) -> Vec<Recipe> {
    let n0 = params.resolve_n0(setup.phi).min(setup.target_recipes);
    let size0 = initial_size(params, setup, rng);
    let mut state = PoolState::initialize(
        &setup.ingredients,
        params.m,
        n0,
        size0,
        setup.cuisine,
        lexicon,
        rng,
    );

    while state.n() < setup.target_recipes {
        if state.partial() >= setup.phi || state.master_remaining() == 0 {
            let size = match &params.size_mode {
                SizeMode::Fixed => setup.rounded_size(),
                SizeMode::Empirical(sizes) if !sizes.is_empty() => {
                    sizes[rng.random_range(0..sizes.len())]
                }
                SizeMode::Empirical(_) => setup.rounded_size(),
            };
            let recipe = if params.null_samples_master {
                // Literal reading: sample from the full master list.
                let size = size.min(setup.ingredients.len()).max(1);
                let picks = sample_without_replacement(rng, setup.ingredients.len(), size);
                Recipe::new(
                    setup.cuisine,
                    picks.into_iter().map(|i| setup.ingredients[i]).collect(),
                )
            } else {
                // Default: sample from the active pool I₀.
                let active = state.active();
                let size = size.min(active.len()).max(1);
                let picks = sample_without_replacement(rng, active.len(), size);
                Recipe::new(setup.cuisine, picks.into_iter().map(|i| active[i]).collect())
            };
            state.push_recipe(recipe);
        } else {
            state.grow(rng, lexicon);
        }
    }
    state.into_recipes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelKind;
    use cuisine_data::CuisineId;
    use cuisine_lexicon::IngredientId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n_ingredients: usize, target: usize) -> CuisineSetup {
        let lex = Lexicon::standard();
        let ingredients: Vec<IngredientId> = lex.ids().take(n_ingredients).collect();
        CuisineSetup {
            cuisine: CuisineId(0),
            ingredients,
            mean_size: 9.0,
            target_recipes: target,
            phi: n_ingredients as f64 / target as f64,
            empirical_sizes: vec![],
        }
    }

    #[test]
    fn produces_exactly_target_recipes() {
        let lex = Lexicon::standard();
        let s = setup(150, 400);
        let mut rng = StdRng::seed_from_u64(1);
        let recipes = run_null(&ModelParams::paper(ModelKind::Null), &s, lex, &mut rng);
        assert_eq!(recipes.len(), 400);
    }

    #[test]
    fn recipes_have_fixed_size_and_are_sets() {
        let lex = Lexicon::standard();
        let s = setup(150, 200);
        let mut rng = StdRng::seed_from_u64(2);
        let recipes = run_null(&ModelParams::paper(ModelKind::Null), &s, lex, &mut rng);
        for r in &recipes {
            assert_eq!(r.size(), 9);
        }
    }

    #[test]
    fn master_sampling_variant_uses_full_vocabulary_quickly() {
        let lex = Lexicon::standard();
        let s = setup(100, 300);
        let params = ModelParams {
            null_samples_master: true,
            ..ModelParams::paper(ModelKind::Null)
        };
        let mut rng = StdRng::seed_from_u64(3);
        let recipes = run_null(&params, &s, lex, &mut rng);
        let used: std::collections::HashSet<_> = recipes
            .iter()
            .flat_map(|r| r.ingredients().iter().copied())
            .collect();
        // 300 × 9 = 2700 uniform draws over 100 ingredients — essentially
        // everything appears.
        assert!(used.len() >= 95, "only {} of 100 used", used.len());
    }

    #[test]
    fn pool_sampling_variant_respects_pool_growth() {
        let lex = Lexicon::standard();
        // phi = 100/120; the active pool grows from 20 toward 100 as
        // recipes accumulate. Early recipes can only use the initial 20.
        let s = setup(100, 120);
        let mut rng = StdRng::seed_from_u64(4);
        let recipes = run_null(&ModelParams::paper(ModelKind::Null), &s, lex, &mut rng);
        let n0 = ModelParams::paper(ModelKind::Null).resolve_n0(s.phi);
        let early_used: std::collections::HashSet<_> = recipes
            .iter()
            .take(n0)
            .flat_map(|r| r.ingredients().iter().copied())
            .collect();
        assert!(early_used.len() <= 20, "initial pool recipes limited to m=20 ingredients");
    }

    #[test]
    fn deterministic_under_seed() {
        let lex = Lexicon::standard();
        let s = setup(80, 100);
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            run_null(&ModelParams::paper(ModelKind::Null), &s, lex, &mut rng)
        };
        assert_eq!(run(5), run(5));
    }
}
