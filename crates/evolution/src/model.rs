//! Model definitions: the four culinary evolution models of Section V and
//! their parameters.

use cuisine_data::{Corpus, CuisineId};
use cuisine_lexicon::IngredientId;
use serde::{Deserialize, Serialize};

/// Which evolution model to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Copy-Mutate Random: replacement ingredient drawn from the whole
    /// active pool.
    CmR,
    /// Copy-Mutate Category-only: replacement drawn from the same category
    /// as the ingredient being replaced.
    CmC,
    /// Copy-Mutate Mixture: a fair coin picks between the CM-R and CM-C
    /// rules at every mutation.
    CmM,
    /// Null Model: no copying or mutation; every iteration samples a fresh
    /// recipe from the active ingredient pool.
    Null,
}

impl ModelKind {
    /// All four models, in the paper's presentation order.
    pub const ALL: [ModelKind; 4] = [ModelKind::CmR, ModelKind::CmC, ModelKind::CmM, ModelKind::Null];

    /// Display label as used in Fig. 4 legends.
    pub fn label(self) -> &'static str {
        match self {
            ModelKind::CmR => "CM-R",
            ModelKind::CmC => "CM-C",
            ModelKind::CmM => "CM-M",
            ModelKind::Null => "NM",
        }
    }

    /// The per-model mutation count the paper found to work (Section VI):
    /// M = 4 for CM-R and 6 for CM-C and CM-M. Zero for the null model.
    pub fn paper_mutations(self) -> usize {
        match self {
            ModelKind::CmR => 4,
            ModelKind::CmC | ModelKind::CmM => 6,
            ModelKind::Null => 0,
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How evolved recipe sizes are chosen.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum SizeMode {
    /// Every recipe has the cuisine's (rounded) mean size s̄ — the paper's
    /// setting.
    #[default]
    Fixed,
    /// Recipe sizes are drawn from the cuisine's empirical size
    /// distribution — the "variable recipe sizes" extension flagged as
    /// future work in Section VII.
    Empirical(Vec<usize>),
}

/// Model parameters (Section VI defaults via [`ModelParams::paper`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelParams {
    /// Initial active-pool size `m` (paper: 20).
    pub m: usize,
    /// Number of mutation attempts `M` per evolved recipe.
    pub mutations: usize,
    /// Initial recipe-pool size `n₀`. `None` = the paper's fixed point
    /// `max(1, round(m / φ))` (see DESIGN.md interpretation note 3).
    pub n0: Option<usize>,
    /// Recipe-size mode.
    pub size_mode: SizeMode,
    /// Null-model sampling source: `false` (default) samples new recipes
    /// from the active pool `I₀` ("all the other steps remain as it is");
    /// `true` samples from the full master list `I` (the literal reading of
    /// the NM paragraph). See DESIGN.md interpretation notes.
    pub null_samples_master: bool,
}

impl ModelParams {
    /// The paper's parameters for a model kind.
    pub fn paper(kind: ModelKind) -> Self {
        ModelParams {
            m: 20,
            mutations: kind.paper_mutations(),
            n0: None,
            size_mode: SizeMode::Fixed,
            null_samples_master: false,
        }
    }

    /// Resolve `n₀` for a cuisine with pool-growth threshold `phi`.
    pub fn resolve_n0(&self, phi: f64) -> usize {
        match self.n0 {
            Some(n0) => n0.max(1),
            None => {
                if phi <= 0.0 {
                    1
                } else {
                    ((self.m as f64 / phi).round() as usize).max(1)
                }
            }
        }
    }
}

/// Everything Algorithm 1 needs to know about the cuisine being modeled.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CuisineSetup {
    /// The cuisine.
    pub cuisine: CuisineId,
    /// The master ingredient list `I`.
    pub ingredients: Vec<IngredientId>,
    /// Mean recipe size s̄ (rounded when used as a fixed size).
    pub mean_size: f64,
    /// Target number of recipes `N`.
    pub target_recipes: usize,
    /// φ = unique ingredients / recipes of the empirical cuisine.
    pub phi: f64,
    /// Empirical size sample (for [`SizeMode::Empirical`]).
    pub empirical_sizes: Vec<usize>,
}

impl CuisineSetup {
    /// Derive the setup from an empirical (or synthetic-empirical) corpus.
    /// Returns `None` for cuisines with no recipes.
    pub fn from_corpus(corpus: &Corpus, cuisine: CuisineId) -> Option<Self> {
        let n = corpus.recipe_count(cuisine);
        if n == 0 {
            return None;
        }
        Some(CuisineSetup {
            cuisine,
            ingredients: corpus.ingredients_in(cuisine),
            mean_size: corpus.mean_size_in(cuisine)?,
            target_recipes: n,
            phi: corpus.phi(cuisine)?,
            empirical_sizes: corpus.sizes_in(cuisine),
        })
    }

    /// s̄ rounded to a usable integer size (at least 1).
    pub fn rounded_size(&self) -> usize {
        (self.mean_size.round() as usize).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuisine_data::Recipe;

    #[test]
    fn paper_mutation_counts() {
        assert_eq!(ModelKind::CmR.paper_mutations(), 4);
        assert_eq!(ModelKind::CmC.paper_mutations(), 6);
        assert_eq!(ModelKind::CmM.paper_mutations(), 6);
        assert_eq!(ModelKind::Null.paper_mutations(), 0);
    }

    #[test]
    fn labels_match_figure_legends() {
        let labels: Vec<&str> = ModelKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels, vec!["CM-R", "CM-C", "CM-M", "NM"]);
    }

    #[test]
    fn n0_fixed_point_matches_paper_reading() {
        let p = ModelParams::paper(ModelKind::CmR);
        // φ = 0.0218 (ITA: 506/23179) -> n0 = 20/0.0218 ≈ 916.
        let phi = 506.0 / 23179.0;
        let n0 = p.resolve_n0(phi);
        assert_eq!(n0, (20.0 / phi).round() as usize);
        // Explicit override wins.
        let p2 = ModelParams { n0: Some(5), ..p.clone() };
        assert_eq!(p2.resolve_n0(phi), 5);
        // Degenerate phi.
        assert_eq!(p.resolve_n0(0.0), 1);
    }

    #[test]
    fn setup_from_corpus() {
        let corpus = Corpus::new(vec![
            Recipe::new(CuisineId(0), vec![IngredientId(1), IngredientId(2)]),
            Recipe::new(
                CuisineId(0),
                vec![IngredientId(2), IngredientId(3), IngredientId(4), IngredientId(5)],
            ),
        ]);
        let s = CuisineSetup::from_corpus(&corpus, CuisineId(0)).unwrap();
        assert_eq!(s.target_recipes, 2);
        assert_eq!(s.ingredients.len(), 5);
        assert_eq!(s.mean_size, 3.0);
        assert_eq!(s.phi, 2.5);
        assert_eq!(s.rounded_size(), 3);
        assert_eq!(s.empirical_sizes, vec![2, 4]);
        assert!(CuisineSetup::from_corpus(&corpus, CuisineId(9)).is_none());
    }
}
