//! Model-vs-empirical evaluation — the machinery behind Fig. 4 and the
//! Section VI category-combination claim.
//!
//! For each cuisine: mine the empirical rank-frequency curve of frequent
//! combinations; run each model's replicate ensemble; mine every
//! replicate's pool the same way; aggregate the replicate curves; report
//! the Eq. 2 distance between the aggregated model curve and the empirical
//! one (the number printed in Fig. 4's legends).

use cuisine_data::{Corpus, CuisineId};
use cuisine_lexicon::Lexicon;
use cuisine_mining::{
    CombinationAnalysis, ItemMode, MineOpts, Miner, TransactionCache, TransactionSet,
    TransactionSource,
};
use cuisine_stats::error::{curve_distance, ErrorMetric};
use cuisine_stats::RankFrequency;
use serde::{Deserialize, Serialize};

use crate::ensemble::{run_ensemble_map, EnsembleConfig};
use crate::model::{CuisineSetup, ModelKind, ModelParams};

/// Evaluation configuration.
#[derive(Debug, Clone)]
pub struct EvaluationConfig {
    /// Replicates per model per cuisine (paper: 100).
    pub ensemble: EnsembleConfig,
    /// Combination granularity (Fig. 4 uses ingredients; the Section VI
    /// exclusion claim uses categories).
    pub mode: ItemMode,
    /// Relative support threshold (paper: 0.05).
    pub min_support: f64,
    /// Distance metric (paper: Eq. 2, i.e. [`ErrorMetric::PaperMae`]).
    pub metric: ErrorMetric,
    /// Mining algorithm.
    pub miner: Miner,
    /// Kernel-internal execution options (reordering, DFS threads). Like
    /// `miner`, value-neutral: no option changes any output byte.
    pub mining: MineOpts,
}

impl Default for EvaluationConfig {
    fn default() -> Self {
        EvaluationConfig {
            ensemble: EnsembleConfig::default(),
            mode: ItemMode::Ingredients,
            min_support: cuisine_mining::PAPER_MIN_SUPPORT,
            metric: ErrorMetric::PaperMae,
            miner: Miner::default(),
            mining: MineOpts::default(),
        }
    }
}

/// One model's result on one cuisine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelResult {
    /// Model evaluated.
    pub model: ModelKind,
    /// Aggregated (replicate-mean) rank-frequency curve.
    pub curve: RankFrequency,
    /// Eq. 2 distance to the empirical curve (`None` when either curve is
    /// empty).
    pub distance: Option<f64>,
}

/// All models' results on one cuisine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CuisineEvaluation {
    /// Region code.
    pub code: String,
    /// Empirical rank-frequency curve.
    pub empirical: RankFrequency,
    /// One result per evaluated model, in input order.
    pub models: Vec<ModelResult>,
}

impl CuisineEvaluation {
    /// The model with the smallest distance (ignoring models with no
    /// distance). `None` when no model produced a curve.
    pub fn best_model(&self) -> Option<ModelKind> {
        self.models
            .iter()
            .filter_map(|m| m.distance.map(|d| (m.model, d)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"))
            .map(|(k, _)| k)
    }

    /// Distance of one model.
    pub fn distance_of(&self, model: ModelKind) -> Option<f64> {
        self.models.iter().find(|m| m.model == model)?.distance
    }
}

/// The full Fig. 4 computation: every populated cuisine × every model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Granularity evaluated at.
    pub mode: ItemMode,
    /// Per-cuisine results.
    pub cuisines: Vec<CuisineEvaluation>,
}

impl Evaluation {
    /// Mean distance of a model across cuisines (skipping missing).
    pub fn mean_distance(&self, model: ModelKind) -> Option<f64> {
        let ds: Vec<f64> =
            self.cuisines.iter().filter_map(|c| c.distance_of(model)).collect();
        if ds.is_empty() {
            return None;
        }
        Some(ds.iter().sum::<f64>() / ds.len() as f64)
    }

    /// How many cuisines each model wins (smallest distance).
    pub fn win_counts(&self) -> Vec<(ModelKind, usize)> {
        ModelKind::ALL
            .iter()
            .map(|&k| {
                let wins = self
                    .cuisines
                    .iter()
                    .filter(|c| c.best_model() == Some(k))
                    .count();
                (k, wins)
            })
            .collect()
    }
}

/// Mine the rank-frequency curve of a recipe pool.
fn pool_curve(
    recipes: &[cuisine_data::Recipe],
    lexicon: &Lexicon,
    config: &EvaluationConfig,
    mining: MineOpts,
) -> RankFrequency {
    let ts = TransactionSet::from_recipes(recipes.iter(), config.mode, lexicon);
    CombinationAnalysis::mine_opts(&ts, config.min_support, config.miner, mining)
        .rank_frequency()
}

/// Evaluate one model on one cuisine.
pub fn evaluate_model_on_cuisine(
    model: ModelKind,
    params: &ModelParams,
    setup: &CuisineSetup,
    empirical: &RankFrequency,
    lexicon: &Lexicon,
    config: &EvaluationConfig,
) -> ModelResult {
    // Replicates fan out per `config.ensemble.threads`; when that is
    // actually parallel, the kernel DFS inside each replicate's mine is
    // forced sequential (nested-parallelism convention).
    let replicate_mining = if cuisine_exec::resolve_threads(
        config.ensemble.threads,
        config.ensemble.replicates,
    ) > 1
    {
        MineOpts { threads: Some(1), ..config.mining }
    } else {
        config.mining
    };
    let curves = run_ensemble_map(
        model,
        params,
        setup,
        lexicon,
        &config.ensemble,
        |recipes| pool_curve(&recipes, lexicon, config, replicate_mining),
    );
    let curve = RankFrequency::aggregate(&curves);
    let distance =
        curve_distance(empirical.frequencies(), curve.frequencies(), config.metric);
    ModelResult { model, curve, distance }
}

/// Evaluate a set of models on every populated cuisine of a corpus.
///
/// Sequential at the cuisine × model level; replicate ensembles still
/// parallelize per `config.ensemble.threads`. See [`evaluate_with`] for the
/// outer fan-out used by the pipeline.
pub fn evaluate(
    corpus: &Corpus,
    lexicon: &Lexicon,
    models: &[ModelKind],
    config: &EvaluationConfig,
) -> Evaluation {
    evaluate_with(corpus, lexicon, models, config, Some(1), None)
}

/// [`evaluate`] with explicit outer parallelism and an optional
/// transaction cache.
///
/// Work fans out across `(cuisine, model)` pairs via
/// [`cuisine_exec::par_map_indexed`]. When the resolved outer thread count
/// exceeds 1, each pair's replicate ensemble is forced to a single inner
/// thread — the outer fan-out already saturates the cores, and nesting
/// scoped pools would oversubscribe. Results are byte-identical for every
/// `threads` value and for cache on vs off: ensemble seeds depend only on
/// logical replicate indices, and cached encodings are the same values the
/// uncached path computes.
pub fn evaluate_with(
    corpus: &Corpus,
    lexicon: &Lexicon,
    models: &[ModelKind],
    config: &EvaluationConfig,
    threads: Option<usize>,
    cache: Option<&TransactionCache>,
) -> Evaluation {
    let source = TransactionSource::from(cache);
    let all: Vec<CuisineId> = CuisineId::all().collect();

    // Stage 1 — per-cuisine prep (setup + empirical curve), in parallel.
    // Kernel-level DFS fan-out is forced sequential whenever this outer
    // fan-out is actually parallel (the nested-parallelism convention).
    let stage1_outer = cuisine_exec::resolve_threads(threads, all.len());
    let stage1_mining = if stage1_outer > 1 {
        MineOpts { threads: Some(1), ..config.mining }
    } else {
        config.mining
    };
    let prep: Vec<(CuisineId, CuisineSetup, RankFrequency)> =
        cuisine_exec::par_map_indexed(&all, threads, |_, &cuisine| {
            let setup = CuisineSetup::from_corpus(corpus, cuisine)?;
            let ts = source.cuisine(corpus, cuisine, config.mode, lexicon);
            let empirical = CombinationAnalysis::mine_opts(
                &ts,
                config.min_support,
                config.miner,
                stage1_mining,
            )
            .rank_frequency();
            Some((cuisine, setup, empirical))
        })
        .into_iter()
        .flatten()
        .collect();

    // Stage 2 — per (cuisine, model) ensembles, in parallel with stable
    // order. Inner replicate parallelism is disabled whenever the outer
    // fan-out is actually parallel.
    let jobs: Vec<(usize, ModelKind)> = (0..prep.len())
        .flat_map(|ci| models.iter().map(move |&m| (ci, m)))
        .collect();
    let outer = cuisine_exec::resolve_threads(threads, jobs.len());
    let inner_config = EvaluationConfig {
        ensemble: EnsembleConfig {
            threads: if outer > 1 { Some(1) } else { config.ensemble.threads },
            ..config.ensemble
        },
        mining: if outer > 1 {
            MineOpts { threads: Some(1), ..config.mining }
        } else {
            config.mining
        },
        ..config.clone()
    };
    let mut results: Vec<ModelResult> =
        cuisine_exec::par_map_indexed(&jobs, threads, |_, &(ci, model)| {
            let (_, setup, empirical) = &prep[ci];
            let params = ModelParams::paper(model);
            evaluate_model_on_cuisine(model, &params, setup, empirical, lexicon, &inner_config)
        });

    // Reassemble: jobs were laid out cuisine-major, so drain in order.
    let mut results = results.drain(..);
    let cuisines = prep
        .into_iter()
        .map(|(cuisine, _, empirical)| CuisineEvaluation {
            code: cuisine.code().to_string(),
            empirical,
            models: results.by_ref().take(models.len()).collect(),
        })
        .collect();
    Evaluation { mode: config.mode, cuisines }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuisine_synth::{generate_corpus, SynthConfig};

    fn small_eval(mode: ItemMode) -> &'static Evaluation {
        use std::sync::OnceLock;
        assert_eq!(mode, ItemMode::Ingredients, "tests share the cached evaluation");
        static EVAL: OnceLock<Evaluation> = OnceLock::new();
        EVAL.get_or_init(|| {
            let lex = Lexicon::standard();
            let corpus = generate_corpus(
                &SynthConfig { seed: 77, scale: 0.02, ..Default::default() },
                lex,
            );
            let config = EvaluationConfig {
                ensemble: EnsembleConfig { replicates: 5, seed: 5, threads: None },
                mode,
                ..Default::default()
            };
            evaluate(&corpus, lex, &ModelKind::ALL, &config)
        })
    }

    #[test]
    fn evaluation_covers_all_cuisines_and_models() {
        let eval = small_eval(ItemMode::Ingredients);
        assert_eq!(eval.cuisines.len(), 25);
        for c in &eval.cuisines {
            assert_eq!(c.models.len(), 4);
            assert!(!c.empirical.is_empty(), "{}: empty empirical curve", c.code);
        }
    }

    #[test]
    fn copy_mutate_beats_null_on_ingredient_combinations() {
        let eval = small_eval(ItemMode::Ingredients);
        // The paper's headline: NM fails to replicate the ingredient-
        // combination distribution while CM models track it. Require the
        // best CM model to beat NM in a clear majority of cuisines.
        let mut cm_wins = 0usize;
        let mut total = 0usize;
        for c in &eval.cuisines {
            let nm = c.distance_of(ModelKind::Null);
            let best_cm = [ModelKind::CmR, ModelKind::CmC, ModelKind::CmM]
                .iter()
                .filter_map(|&k| c.distance_of(k))
                .min_by(|a, b| a.partial_cmp(b).unwrap());
            if let (Some(nm), Some(cm)) = (nm, best_cm) {
                total += 1;
                if cm < nm {
                    cm_wins += 1;
                }
            }
        }
        assert!(total >= 20, "only {total} comparable cuisines");
        assert!(
            cm_wins * 3 >= total * 2,
            "copy-mutate won only {cm_wins}/{total} cuisines"
        );
    }

    #[test]
    fn mean_distances_and_win_counts_are_consistent() {
        let eval = small_eval(ItemMode::Ingredients);
        for k in ModelKind::ALL {
            assert!(eval.mean_distance(k).is_some(), "{k}");
        }
        let wins: usize = eval.win_counts().iter().map(|&(_, w)| w).sum();
        assert!(wins <= 25);
    }
}
