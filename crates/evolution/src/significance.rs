//! Statistical backing for the model comparison.
//!
//! The paper concludes copy-mutation "emerged as the dominant theory" by
//! inspecting Fig. 4's legends. This module makes that quantitative: a
//! paired sign test and a bootstrap confidence interval over the
//! per-cuisine Eq. 2 distance differences between two models.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::evaluate::Evaluation;
use crate::model::ModelKind;

/// Result of comparing two models across cuisines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelComparison {
    /// The model hypothesized to fit better.
    pub better: ModelKind,
    /// The comparison model.
    pub worse: ModelKind,
    /// Cuisines where `better` had strictly smaller distance.
    pub wins: usize,
    /// Cuisines where `worse` had strictly smaller distance.
    pub losses: usize,
    /// Cuisines with identical distances (excluded from the sign test).
    pub ties: usize,
    /// Two-sided sign-test p-value for "the models fit equally well".
    pub sign_test_p: f64,
    /// Mean of (distance(worse) − distance(better)) across cuisines.
    pub mean_difference: f64,
    /// Percentile-bootstrap 95% CI of the mean difference.
    pub ci95: (f64, f64),
}

impl ModelComparison {
    /// Whether the comparison is significant at `alpha` *and* the CI
    /// excludes zero in the hypothesized direction.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.sign_test_p < alpha && self.ci95.0 > 0.0
    }
}

/// Exact two-sided sign-test p-value: probability under Binomial(n, 1/2)
/// of an outcome at least as extreme as `k` successes.
pub fn sign_test_p(k: usize, n: usize) -> f64 {
    if n == 0 {
        return 1.0;
    }
    // P(X <= min(k, n-k)) * 2, X ~ Bin(n, 1/2), computed in log space.
    let tail = k.min(n - k);
    let ln_half_n = -(n as f64) * std::f64::consts::LN_2;
    let mut p = 0.0f64;
    for i in 0..=tail {
        p += (ln_binom(n, i) + ln_half_n).exp();
    }
    (2.0 * p).min(1.0)
}

/// `ln C(n, k)` via the log-gamma function.
fn ln_binom(n: usize, k: usize) -> f64 {
    cuisine_stats::special::ln_gamma(n as f64 + 1.0)
        - cuisine_stats::special::ln_gamma(k as f64 + 1.0)
        - cuisine_stats::special::ln_gamma((n - k) as f64 + 1.0)
}

/// Compare the copy-mutate *family* (per-cuisine best of CM-R/CM-C/CM-M)
/// against a reference model — the paper's actual claim is that
/// copy-mutation as a mechanism beats the null control, with the best
/// variant differing by cuisine (Section VI). Returns `None` when fewer
/// than two cuisines are comparable. The result's `better` field is
/// reported as [`ModelKind::CmM`] (a representative; the family has no
/// single tag).
pub fn compare_family_vs(
    eval: &Evaluation,
    reference: ModelKind,
    seed: u64,
) -> Option<ModelComparison> {
    let diffs: Vec<f64> = eval
        .cuisines
        .iter()
        .filter_map(|c| {
            let best_cm = [ModelKind::CmR, ModelKind::CmC, ModelKind::CmM]
                .iter()
                .filter_map(|&k| c.distance_of(k))
                .min_by(|a, b| a.partial_cmp(b).expect("finite distances"))?;
            let r = c.distance_of(reference)?;
            Some(r - best_cm)
        })
        .collect();
    comparison_from_diffs(ModelKind::CmM, reference, &diffs, seed)
}

/// Compare two models over an [`Evaluation`]. Returns `None` when fewer
/// than two cuisines have distances for both models.
pub fn compare_models(
    eval: &Evaluation,
    better: ModelKind,
    worse: ModelKind,
    seed: u64,
) -> Option<ModelComparison> {
    let diffs: Vec<f64> = eval
        .cuisines
        .iter()
        .filter_map(|c| {
            let b = c.distance_of(better)?;
            let w = c.distance_of(worse)?;
            Some(w - b)
        })
        .collect();
    comparison_from_diffs(better, worse, &diffs, seed)
}

/// Shared tail: build the comparison record from per-cuisine differences
/// `distance(worse) − distance(better)`.
fn comparison_from_diffs(
    better: ModelKind,
    worse: ModelKind,
    diffs: &[f64],
    seed: u64,
) -> Option<ModelComparison> {
    if diffs.len() < 2 {
        return None;
    }
    let wins = diffs.iter().filter(|&&d| d > 0.0).count();
    let losses = diffs.iter().filter(|&&d| d < 0.0).count();
    let ties = diffs.len() - wins - losses;
    let mean_difference = diffs.iter().sum::<f64>() / diffs.len() as f64;

    // Percentile bootstrap over cuisines.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut means: Vec<f64> = (0..2_000)
        .map(|_| {
            let total: f64 = (0..diffs.len())
                .map(|_| diffs[rng.random_range(0..diffs.len())])
                .sum();
            total / diffs.len() as f64
        })
        .collect();
    means.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let lo = means[(0.025 * means.len() as f64) as usize];
    let hi = means[((0.975 * means.len() as f64) as usize).min(means.len() - 1)];

    Some(ModelComparison {
        better,
        worse,
        wins,
        losses,
        ties,
        sign_test_p: sign_test_p(wins, wins + losses),
        mean_difference,
        ci95: (lo, hi),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::{CuisineEvaluation, ModelResult};
    use cuisine_mining::ItemMode;
    use cuisine_stats::RankFrequency;

    fn eval_from(diffs: &[(f64, f64)]) -> Evaluation {
        // (cm_distance, nm_distance) per synthetic "cuisine".
        let cuisines = diffs
            .iter()
            .enumerate()
            .map(|(i, &(cm, nm))| CuisineEvaluation {
                code: format!("C{i}"),
                empirical: RankFrequency::from_frequencies([0.5, 0.25]),
                models: vec![
                    ModelResult {
                        model: ModelKind::CmR,
                        curve: RankFrequency::from_frequencies([0.5]),
                        distance: Some(cm),
                    },
                    ModelResult {
                        model: ModelKind::Null,
                        curve: RankFrequency::from_frequencies([0.5]),
                        distance: Some(nm),
                    },
                ],
            })
            .collect();
        Evaluation { mode: ItemMode::Ingredients, cuisines }
    }

    #[test]
    fn sign_test_reference_values() {
        // 8/8 wins: p = 2 * (1/2)^8 = 0.0078125.
        assert!((sign_test_p(8, 8) - 0.0078125).abs() < 1e-9);
        // 4/8: perfectly balanced -> p = 1 (capped).
        assert!((sign_test_p(4, 8) - 1.0).abs() < 1e-9);
        // Symmetric.
        assert!((sign_test_p(1, 10) - sign_test_p(9, 10)).abs() < 1e-12);
        assert_eq!(sign_test_p(0, 0), 1.0);
    }

    #[test]
    fn clear_separation_is_significant() {
        let diffs: Vec<(f64, f64)> =
            (0..20).map(|i| (0.001 + 0.0001 * i as f64, 0.05)).collect();
        let eval = eval_from(&diffs);
        let cmp = compare_models(&eval, ModelKind::CmR, ModelKind::Null, 1).unwrap();
        assert_eq!(cmp.wins, 20);
        assert_eq!(cmp.losses, 0);
        assert!(cmp.sign_test_p < 0.001);
        assert!(cmp.mean_difference > 0.0);
        assert!(cmp.significant_at(0.01), "{cmp:?}");
    }

    #[test]
    fn balanced_outcome_is_not_significant() {
        let mut diffs = vec![(0.01, 0.02); 10]; // CM better
        diffs.extend(vec![(0.02, 0.01); 10]); // NM better
        let eval = eval_from(&diffs);
        let cmp = compare_models(&eval, ModelKind::CmR, ModelKind::Null, 2).unwrap();
        assert_eq!(cmp.wins, 10);
        assert_eq!(cmp.losses, 10);
        assert!(cmp.sign_test_p > 0.5);
        assert!(!cmp.significant_at(0.05));
    }

    #[test]
    fn ties_are_excluded() {
        let diffs = vec![(0.01, 0.01); 5];
        let eval = eval_from(&diffs);
        let cmp = compare_models(&eval, ModelKind::CmR, ModelKind::Null, 3).unwrap();
        assert_eq!(cmp.ties, 5);
        assert_eq!(cmp.wins + cmp.losses, 0);
        assert_eq!(cmp.sign_test_p, 1.0);
    }

    #[test]
    fn too_few_cuisines_is_none() {
        let eval = eval_from(&[(0.01, 0.02)]);
        assert!(compare_models(&eval, ModelKind::CmR, ModelKind::Null, 4).is_none());
    }
}
