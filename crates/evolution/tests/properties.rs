//! Property-based tests for the Algorithm-1 engines: pool accounting and
//! recipe invariants under arbitrary parameters.

use cuisine_data::CuisineId;
use cuisine_evolution::{
    run_copy_mutate, run_null, CuisineSetup, ModelKind, ModelParams, PoolState, SizeMode,
};
use cuisine_lexicon::{IngredientId, Lexicon};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup(n_ingredients: usize, target: usize, mean_size: f64) -> CuisineSetup {
    let lex = Lexicon::standard();
    let ingredients: Vec<IngredientId> = lex.ids().take(n_ingredients).collect();
    CuisineSetup {
        cuisine: CuisineId(0),
        ingredients,
        mean_size,
        target_recipes: target,
        phi: n_ingredients as f64 / target as f64,
        empirical_sizes: vec![],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pool_accounting_is_conserved(
        n_ing in 10usize..200,
        m in 1usize..40,
        n0 in 1usize..20,
        seed in any::<u64>(),
    ) {
        let lex = Lexicon::standard();
        let ingredients: Vec<IngredientId> = lex.ids().take(n_ing).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut state =
            PoolState::initialize(&ingredients, m, n0, 5, CuisineId(0), lex, &mut rng);
        // Invariant: active + master == total, before and after growth.
        prop_assert_eq!(state.m() + state.master_remaining(), n_ing);
        for _ in 0..10 {
            let grew = state.grow(&mut rng, lex);
            prop_assert_eq!(state.m() + state.master_remaining(), n_ing);
            if !grew {
                prop_assert_eq!(state.master_remaining(), 0);
            }
        }
        // Active pool has no duplicates.
        let mut a: Vec<_> = state.active().to_vec();
        a.sort_unstable();
        let before = a.len();
        a.dedup();
        prop_assert_eq!(a.len(), before);
    }

    #[test]
    fn all_models_hit_target_with_valid_recipes(
        kind_idx in 0usize..4,
        n_ing in 30usize..150,
        target in 20usize..150,
        mean_size in 3.0f64..12.0,
        seed in any::<u64>(),
    ) {
        let lex = Lexicon::standard();
        let kind = ModelKind::ALL[kind_idx];
        let s = setup(n_ing, target, mean_size);
        let params = ModelParams::paper(kind);
        let mut rng = StdRng::seed_from_u64(seed);
        let recipes = match kind {
            ModelKind::Null => run_null(&params, &s, lex, &mut rng),
            _ => run_copy_mutate(kind, &params, &s, lex, &mut rng),
        };
        prop_assert_eq!(recipes.len(), target);
        let allowed: std::collections::HashSet<_> = s.ingredients.iter().copied().collect();
        for r in &recipes {
            prop_assert!(r.size() >= 1);
            // Set property: sorted strictly increasing.
            for w in r.ingredients().windows(2) {
                prop_assert!(w[0] < w[1], "duplicate or unsorted ingredients");
            }
            for ing in r.ingredients() {
                prop_assert!(allowed.contains(ing), "foreign ingredient {ing:?}");
            }
        }
    }

    #[test]
    fn fixed_size_mode_is_exactly_fixed(
        kind_idx in 0usize..4,
        seed in any::<u64>(),
    ) {
        let lex = Lexicon::standard();
        let kind = ModelKind::ALL[kind_idx];
        let s = setup(100, 60, 9.0);
        let params = ModelParams::paper(kind);
        let mut rng = StdRng::seed_from_u64(seed);
        let recipes = match kind {
            ModelKind::Null => run_null(&params, &s, lex, &mut rng),
            _ => run_copy_mutate(kind, &params, &s, lex, &mut rng),
        };
        prop_assert!(recipes.iter().all(|r| r.size() == 9));
    }

    #[test]
    fn empirical_size_mode_draws_from_sample(
        seed in any::<u64>(),
    ) {
        let lex = Lexicon::standard();
        let mut s = setup(100, 60, 9.0);
        s.empirical_sizes = vec![4, 6, 8];
        let params = ModelParams {
            size_mode: SizeMode::Empirical(s.empirical_sizes.clone()),
            ..ModelParams::paper(ModelKind::Null)
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let recipes = run_null(&params, &s, lex, &mut rng);
        prop_assert!(recipes.iter().all(|r| [4usize, 6, 8].contains(&r.size())));
    }
}
