//! Calibration checks: how close does a generated corpus sit to the Table-I
//! reference statistics?

use cuisine_data::{Corpus, CuisineId};
use cuisine_lexicon::Lexicon;
use serde::{Deserialize, Serialize};

/// Per-cuisine calibration result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CuisineCalibration {
    /// Region code.
    pub code: String,
    /// Target recipe count (scaled Table I).
    pub target_recipes: usize,
    /// Recipes actually generated.
    pub actual_recipes: usize,
    /// Table-I unique-ingredient target (vocabulary size).
    pub target_ingredients: usize,
    /// Unique ingredients actually observed in the generated recipes.
    pub actual_ingredients: usize,
    /// Mean recipe size observed.
    pub mean_size: f64,
    /// Smallest and largest recipe size observed.
    pub size_range: (usize, usize),
}

impl CuisineCalibration {
    /// Fraction of the target vocabulary realized in the output (tail items
    /// may not appear in small corpora).
    pub fn vocabulary_coverage(&self) -> f64 {
        if self.target_ingredients == 0 {
            return 1.0;
        }
        self.actual_ingredients as f64 / self.target_ingredients as f64
    }
}

/// Whole-corpus calibration report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationReport {
    /// One entry per populated cuisine, in cuisine order.
    pub cuisines: Vec<CuisineCalibration>,
}

impl CalibrationReport {
    /// Measure a corpus against the Table-I targets, scaled by
    /// `scale` (the generator's configured fraction).
    pub fn measure(corpus: &Corpus, _lexicon: &Lexicon, scale: f64) -> Self {
        let cuisines = CuisineId::all()
            .filter(|&c| corpus.recipe_count(c) > 0)
            .map(|c| {
                let sizes = corpus.sizes_in(c);
                let mean_size = corpus.mean_size_in(c).unwrap_or(0.0);
                let min = sizes.iter().copied().min().unwrap_or(0);
                let max = sizes.iter().copied().max().unwrap_or(0);
                CuisineCalibration {
                    code: c.code().to_string(),
                    target_recipes: ((c.info().recipes as f64 * scale).round() as usize).max(1),
                    actual_recipes: corpus.recipe_count(c),
                    target_ingredients: c.info().ingredients,
                    actual_ingredients: corpus.unique_ingredient_count(c),
                    mean_size,
                    size_range: (min, max),
                }
            })
            .collect();
        CalibrationReport { cuisines }
    }

    /// Mean vocabulary coverage across cuisines.
    pub fn mean_coverage(&self) -> f64 {
        if self.cuisines.is_empty() {
            return 0.0;
        }
        self.cuisines.iter().map(|c| c.vocabulary_coverage()).sum::<f64>()
            / self.cuisines.len() as f64
    }

    /// Mean recipe size across cuisines (unweighted).
    pub fn mean_size(&self) -> f64 {
        if self.cuisines.is_empty() {
            return 0.0;
        }
        self.cuisines.iter().map(|c| c.mean_size).sum::<f64>() / self.cuisines.len() as f64
    }

    /// True when every cuisine hit its recipe-count target exactly and all
    /// sizes stayed within the paper's [2, 38] bounds.
    pub fn structurally_sound(&self) -> bool {
        self.cuisines.iter().all(|c| {
            c.actual_recipes == c.target_recipes && c.size_range.0 >= 2 && c.size_range.1 <= 38
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_corpus, SynthConfig};

    #[test]
    fn report_on_test_scale_corpus() {
        let lex = Lexicon::standard();
        let config = SynthConfig::test_scale(21);
        let corpus = generate_corpus(&config, lex);
        let report = CalibrationReport::measure(&corpus, lex, config.scale);
        assert_eq!(report.cuisines.len(), 25);
        assert!(report.structurally_sound(), "{report:#?}");
        assert!((report.mean_size() - 9.0).abs() < 0.6, "mean size {}", report.mean_size());
    }

    #[test]
    fn coverage_improves_with_scale() {
        let lex = Lexicon::standard();
        let small = SynthConfig { seed: 22, scale: 0.01, ..Default::default() };
        let large = SynthConfig { seed: 22, scale: 0.06, ..Default::default() };
        let cov = |cfg: &SynthConfig| {
            CalibrationReport::measure(&generate_corpus(cfg, lex), lex, cfg.scale).mean_coverage()
        };
        let (c_small, c_large) = (cov(&small), cov(&large));
        assert!(c_large > c_small, "coverage {c_small} -> {c_large}");
        // Full coverage needs full scale (tail items in small cuisines are
        // legitimately rare); at 6% scale three-quarters is the bar.
        assert!(c_large > 0.75, "large-scale coverage {c_large}");
    }

    #[test]
    fn empty_corpus_report() {
        let lex = Lexicon::standard();
        let report = CalibrationReport::measure(&Corpus::new(vec![]), lex, 1.0);
        assert!(report.cuisines.is_empty());
        assert_eq!(report.mean_coverage(), 0.0);
    }
}
