//! The corpus generator: turns per-cuisine profiles into a full synthetic
//! corpus calibrated to Table I.

use cuisine_data::{Corpus, CuisineId, Recipe};
use cuisine_lexicon::{IngredientId, Lexicon};
use cuisine_stats::sampling::{weighted_sample_without_replacement, AliasTable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::popularity::GlobalPrior;
use crate::profile::CuisineProfile;

/// Generator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthConfig {
    /// Master seed; everything downstream is deterministic in it.
    pub seed: u64,
    /// Fraction of the Table-I recipe counts to generate (1.0 = full
    /// 158,460-recipe corpus; smaller values for tests). Per-cuisine counts
    /// are rounded up so no cuisine is empty.
    pub scale: f64,
    /// Exponent of the global Zipf popularity prior.
    pub zipf_exponent: f64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig { seed: 0xC015_111E, scale: 1.0, zipf_exponent: 1.0 }
    }
}

impl SynthConfig {
    /// A reduced-scale configuration for tests and quick runs.
    pub fn test_scale(seed: u64) -> Self {
        SynthConfig { seed, scale: 0.03, ..Default::default() }
    }

    /// Number of recipes to generate for a cuisine under this config.
    pub fn recipes_for(&self, cuisine: CuisineId) -> usize {
        ((cuisine.info().recipes as f64 * self.scale).round() as usize).max(1)
    }
}

/// Generate the recipes of one cuisine from its profile.
///
/// Each recipe draws a size from the profile's truncated-Gaussian law and
/// then samples that many *distinct* ingredients with probability
/// proportional to the profile weights. Sampling uses an alias table with
/// rejection of duplicates (fast: sizes ≪ vocabulary), falling back to
/// exact weighted sampling without replacement if rejection stalls.
pub fn generate_cuisine<R: Rng + ?Sized>(
    profile: &CuisineProfile,
    n_recipes: usize,
    rng: &mut R,
) -> Vec<Recipe> {
    assert!(
        !profile.vocabulary.is_empty(),
        "cannot generate recipes from an empty vocabulary"
    );
    let alias = AliasTable::new(&profile.weights);
    let law = profile.size_law;
    let max_size = profile.vocabulary.len();

    let mut out = Vec::with_capacity(n_recipes);
    let mut picked: Vec<usize> = Vec::new();
    for _ in 0..n_recipes {
        let size = law.sample(rng, max_size);
        picked.clear();
        // Rejection sampling from the alias table; duplicates are rare
        // while `size` is far below the effective vocabulary mass.
        let mut attempts = 0usize;
        let attempt_cap = 40 * size.max(1);
        while picked.len() < size && attempts < attempt_cap {
            attempts += 1;
            let idx = alias.sample(rng);
            if !picked.contains(&idx) {
                picked.push(idx);
            }
        }
        if picked.len() < size {
            // Exact (slower) fallback — practically unreachable with the
            // standard profiles, but guarantees termination for extreme
            // weight skews.
            picked = weighted_sample_without_replacement(rng, &profile.weights, size);
        }
        let ingredients: Vec<IngredientId> =
            picked.iter().map(|&i| profile.vocabulary[i]).collect();
        out.push(Recipe::new(profile.cuisine, ingredients));
    }
    out
}

/// Generate the full multi-cuisine corpus.
///
/// Profiles are built from `config.seed`; each cuisine then generates from
/// an independent, deterministic sub-seed so per-cuisine output does not
/// depend on generation order.
pub fn generate_corpus(config: &SynthConfig, lexicon: &Lexicon) -> Corpus {
    let prior = GlobalPrior::new(lexicon, config.zipf_exponent, config.seed);
    let mut recipes = Vec::new();
    for cuisine in CuisineId::all() {
        let profile = CuisineProfile::standard(cuisine, lexicon, &prior, config.seed);
        let n = config.recipes_for(cuisine);
        let mut rng = StdRng::seed_from_u64(
            config.seed ^ 0xA5A5_5A5A_0000_0000u64 ^ ((cuisine.index() as u64 + 1) << 32),
        );
        recipes.extend(generate_cuisine(&profile, n, &mut rng));
    }
    Corpus::new(recipes)
}

/// Build the standard profile set for all 25 cuisines (exposed for the
/// evolution experiments, which seed their models from profiles).
pub fn standard_profiles(config: &SynthConfig, lexicon: &Lexicon) -> Vec<CuisineProfile> {
    let prior = GlobalPrior::new(lexicon, config.zipf_exponent, config.seed);
    CuisineId::all()
        .map(|c| CuisineProfile::standard(c, lexicon, &prior, config.seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_counts_per_cuisine() {
        let lex = Lexicon::standard();
        let config = SynthConfig::test_scale(1);
        let corpus = generate_corpus(&config, lex);
        for cuisine in CuisineId::all() {
            assert_eq!(
                corpus.recipe_count(cuisine),
                config.recipes_for(cuisine),
                "{}",
                cuisine.code()
            );
        }
    }

    #[test]
    fn recipe_sizes_respect_bounds() {
        let lex = Lexicon::standard();
        let corpus = generate_corpus(&SynthConfig::test_scale(2), lex);
        for r in corpus.recipes() {
            assert!((2..=38).contains(&r.size()), "size {}", r.size());
        }
    }

    #[test]
    fn mean_size_is_near_nine() {
        let lex = Lexicon::standard();
        let corpus = generate_corpus(&SynthConfig::test_scale(3), lex);
        let sizes: Vec<f64> = corpus.recipes().iter().map(|r| r.size() as f64).collect();
        let mean = sizes.iter().sum::<f64>() / sizes.len() as f64;
        assert!((mean - 9.0).abs() < 0.5, "mean recipe size {mean}");
    }

    #[test]
    fn recipes_use_only_vocabulary_ingredients() {
        let lex = Lexicon::standard();
        let config = SynthConfig::test_scale(4);
        let prior = GlobalPrior::new(lex, config.zipf_exponent, config.seed);
        let cuisine = CuisineId(0);
        let profile = CuisineProfile::standard(cuisine, lex, &prior, config.seed);
        let vocab: std::collections::HashSet<_> = profile.vocabulary.iter().copied().collect();
        let mut rng = StdRng::seed_from_u64(9);
        for r in generate_cuisine(&profile, 200, &mut rng) {
            for ing in r.ingredients() {
                assert!(vocab.contains(ing));
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let lex = Lexicon::standard();
        let a = generate_corpus(&SynthConfig::test_scale(5), lex);
        let b = generate_corpus(&SynthConfig::test_scale(5), lex);
        assert_eq!(a.recipes(), b.recipes());
    }

    #[test]
    fn different_seeds_differ() {
        let lex = Lexicon::standard();
        let a = generate_corpus(&SynthConfig::test_scale(6), lex);
        let b = generate_corpus(&SynthConfig::test_scale(7), lex);
        assert_ne!(a.recipes(), b.recipes());
    }

    #[test]
    fn full_scale_counts_match_table1() {
        // Only check the arithmetic, not a full generation.
        let config = SynthConfig::default();
        let total: usize = CuisineId::all().map(|c| config.recipes_for(c)).sum();
        assert_eq!(total, 158_460);
    }

    #[test]
    fn boosted_ingredients_are_heavily_used() {
        let lex = Lexicon::standard();
        let config = SynthConfig::test_scale(8);
        let corpus = generate_corpus(&config, lex);
        // In every cuisine, the first-listed overrepresented ingredient
        // should appear in a large share of recipes.
        for cuisine in CuisineId::all() {
            let first = cuisine.info().overrepresented[0];
            let id = lex.resolve(first).unwrap();
            let share = corpus.usage(cuisine, id) as f64
                / corpus.recipe_count(cuisine) as f64;
            assert!(
                share > 0.2,
                "{}: {first:?} used in only {share:.3} of recipes",
                cuisine.code()
            );
        }
    }
}
