//! Per-cuisine generation profiles.
//!
//! A [`CuisineProfile`] pins down everything the generator needs for one
//! cuisine: its ingredient vocabulary (sized to the Table-I unique
//! ingredient count), the sampling weight of each vocabulary item, and the
//! recipe-size law. Weights compose three factors:
//!
//! `weight(i) = global_zipf(i) × category_multiplier(ς, cat(i)) ×
//! boost(i ∈ overrepresented(ς)) × noise(ς, i)`
//!
//! - the global Zipf prior gives every cuisine the same heavy-tailed
//!   popularity *shape* (the invariance of Fig. 3);
//! - category multipliers differentiate cuisines the way Fig. 2 shows
//!   (INSC/AFR spice-heavy, SCND/FRA/IRL dairy-heavy, …);
//! - the overrepresentation boost plants the Table-I top-5 lists;
//! - lognormal-ish noise (seeded per cuisine) diversifies vocabularies.

use cuisine_data::{Cuisine, CuisineId};
use cuisine_lexicon::{Category, IngredientId, Lexicon};
use cuisine_stats::sampling::normal;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::popularity::GlobalPrior;

/// Base usage multiplier per category, shared by all cuisines.
///
/// Encodes the paper's observation that "all the world cuisines in-general
/// used ingredients from Vegetable, Additive, Spice, Dairy, Herb, Plant and
/// Fruit categories more frequently than from other categories" (Fig. 2).
pub fn base_category_multiplier(cat: Category) -> f64 {
    match cat {
        Category::Additive => 1.8,
        Category::Vegetable => 1.7,
        Category::Spice => 1.4,
        Category::Dairy => 1.4,
        Category::Herb => 1.2,
        Category::Plant => 1.1,
        Category::Fruit => 1.1,
        Category::Cereal => 1.0,
        Category::Meat => 0.9,
        Category::NutsAndSeeds => 0.8,
        Category::Legume => 0.7,
        Category::Dish => 0.7,
        Category::Bakery => 0.6,
        Category::Fungus => 0.6,
        Category::Fish => 0.5,
        Category::Seafood => 0.5,
        Category::Maize => 0.5,
        Category::Beverage => 0.4,
        Category::BeverageAlcoholic => 0.4,
        Category::Flower => 0.2,
        Category::EssentialOil => 0.15,
    }
}

/// Per-cuisine deviations from the base category profile, following the
/// contrasts the paper calls out in Section III.
pub fn cuisine_category_multiplier(code: &str, cat: Category) -> f64 {
    use Category::*;
    let factor: f64 = match (code, cat) {
        // "recipes corresponding to Indian Subcontinent (INSC) and African
        // (AFR) cuisines used spices more frequently"
        ("INSC", Spice) => 2.4,
        ("AFR", Spice) => 1.8,
        ("MEX", Spice) => 1.5,
        ("ME", Spice) => 1.4,
        ("CBN", Spice) => 1.3,
        // "... than those from Japan (JPN), Australia and New Zealand (ANZ)
        // and Republic of Ireland (IRL)"
        ("JPN", Spice) => 0.55,
        ("ANZ", Spice) => 0.6,
        ("IRL", Spice) => 0.55,
        ("UK", Spice) => 0.7,
        ("SCND", Spice) => 0.6,
        // "recipes from Scandinavia (SCND), France (FRA) and Republic of
        // Ireland (IRL) used dairy products more frequently"
        ("SCND", Dairy) => 1.7,
        ("FRA", Dairy) => 1.6,
        ("IRL", Dairy) => 1.7,
        ("CAN", Dairy) => 1.4,
        ("DACH", Dairy) => 1.4,
        ("EE", Dairy) => 1.3,
        ("BN", Dairy) => 1.4,
        ("UK", Dairy) => 1.3,
        ("USA", Dairy) => 1.3,
        // "... than Japan (JPN), South East Asia (SEA), Thailand (THA), and
        // Korea (KOR)"
        ("JPN", Dairy) => 0.25,
        ("SEA", Dairy) => 0.3,
        ("THA", Dairy) => 0.25,
        ("KOR", Dairy) => 0.3,
        ("CHN", Dairy) => 0.35,
        // Seafood/fish-forward cuisines.
        ("JPN", Fish) => 2.5,
        ("JPN", Seafood) => 2.0,
        ("SEA", Fish) => 2.2,
        ("THA", Fish) => 2.2,
        ("KOR", Fish) => 1.8,
        ("SCND", Fish) => 1.8,
        ("SP", Seafood) => 1.6,
        ("CBN", Fish) => 1.4,
        // Herb-forward Mediterranean profiles.
        ("ITA", Herb) => 1.5,
        ("GRC", Herb) => 1.5,
        ("FRA", Herb) => 1.3,
        ("ME", Herb) => 1.5,
        ("THA", Herb) => 1.5,
        ("MEX", Herb) => 1.3,
        // Maize cultures.
        ("MEX", Maize) => 3.0,
        ("CAM", Maize) => 2.5,
        ("SAM", Maize) => 1.6,
        ("USA", Maize) => 1.3,
        // Legume cultures.
        ("INSC", Legume) => 2.2,
        ("ME", Legume) => 1.6,
        ("MEX", Legume) => 1.6,
        ("CAM", Legume) => 1.6,
        // Meat-forward.
        ("SAM", Meat) => 1.8,
        ("DACH", Meat) => 1.4,
        ("EE", Meat) => 1.4,
        ("USA", Meat) => 1.2,
        // Baking cultures lean on cereals.
        ("CAN", Cereal) => 1.3,
        ("DACH", Cereal) => 1.3,
        ("EE", Cereal) => 1.3,
        ("SCND", Cereal) => 1.3,
        ("IRL", Cereal) => 1.3,
        ("BN", Cereal) => 1.3,
        ("UK", Cereal) => 1.2,
        ("ANZ", Cereal) => 1.2,
        // Rice-and-soy cultures lean on cereals too, lightly.
        ("CHN", Cereal) => 1.2,
        ("JPN", Cereal) => 1.2,
        ("KOR", Cereal) => 1.2,
        _ => 1.0,
    };
    base_category_multiplier(cat) * factor
}

/// Sampling weight boost applied to a cuisine's Table-I overrepresented
/// ingredients, decaying with list position so the published order tends to
/// be reproduced.
pub fn overrepresentation_boost(position: usize) -> f64 {
    // Position 0 gets the largest boost.
    match position {
        0 => 12.0,
        1 => 10.5,
        2 => 9.0,
        3 => 7.5,
        4 => 6.0,
        _ => 5.0,
    }
}

/// The recipe-size law of Fig. 1: truncated discrete Gaussian with a small
/// heavy-tail mixture component.
///
/// The bulk is `Normal(mean, sd)`; with probability `tail_weight` a draw
/// comes from the wider `Normal(tail_mean, tail_sd)` instead. The tail
/// component models the long right flank of the empirical distribution —
/// without it a pure Gaussian with mean 9 essentially never reaches the
/// paper's observed maximum of 38.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeLaw {
    /// Mean recipe size of the bulk component (paper: ≈ 9).
    pub mean: f64,
    /// Standard deviation of the bulk (calibrated to ≈ 3.2).
    pub sd: f64,
    /// Mixture weight of the heavy-tail component.
    pub tail_weight: f64,
    /// Mean of the tail component.
    pub tail_mean: f64,
    /// Standard deviation of the tail component.
    pub tail_sd: f64,
    /// Lower bound (paper: 2).
    pub min: usize,
    /// Upper bound (paper: 38).
    pub max: usize,
}

impl Default for SizeLaw {
    fn default() -> Self {
        SizeLaw {
            mean: 9.0,
            sd: 3.2,
            tail_weight: 0.04,
            tail_mean: 14.0,
            tail_sd: 5.5,
            min: 2,
            max: 38,
        }
    }
}

impl SizeLaw {
    /// Draw one recipe size, truncating to `[min, min(max, cap)]`.
    pub fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R, cap: usize) -> usize {
        use rand::RngExt;
        let hi = self.max.min(cap).max(self.min);
        if rng.random::<f64>() < self.tail_weight {
            cuisine_stats::sampling::truncated_normal_int(
                rng,
                self.tail_mean,
                self.tail_sd,
                self.min,
                hi,
            )
        } else {
            cuisine_stats::sampling::truncated_normal_int(rng, self.mean, self.sd, self.min, hi)
        }
    }
}

/// Everything the generator needs for one cuisine.
#[derive(Debug, Clone)]
pub struct CuisineProfile {
    /// Which cuisine this profile describes.
    pub cuisine: CuisineId,
    /// The vocabulary: entity ids available to this cuisine, sized to the
    /// Table-I unique-ingredient count.
    pub vocabulary: Vec<IngredientId>,
    /// Sampling weight of each vocabulary item (parallel to `vocabulary`).
    pub weights: Vec<f64>,
    /// Recipe-size law.
    pub size_law: SizeLaw,
    /// Target recipe count (Table I).
    pub target_recipes: usize,
}

impl CuisineProfile {
    /// Build the standard profile for a cuisine.
    ///
    /// `seed` controls the per-cuisine weight noise (combined with the
    /// cuisine index so cuisines differ under the same seed).
    pub fn standard(
        cuisine: CuisineId,
        lexicon: &Lexicon,
        prior: &GlobalPrior,
        seed: u64,
    ) -> Self {
        let info: &Cuisine = cuisine.info();
        let mut rng = StdRng::seed_from_u64(seed ^ (0x9E37_79B9_7F4A_7C15u64
            .wrapping_mul(cuisine.index() as u64 + 1)));

        // Per-cuisine popularity-exponent jitter: real cuisines do not
        // share one Zipf law exactly, and the spread of exponents is what
        // gives the paper's pairwise Eq. 2 distances their magnitude
        // (average 0.035/0.052) while the *shape* stays homogeneous.
        let exponent_scale = (1.0 + normal(&mut rng, 0.0, 0.18)).clamp(0.65, 1.45);

        // Per-cuisine category-emphasis jitter (lognormal, sd 0.25): real
        // cuisines vary in how much they lean on each category beyond the
        // systematic contrasts encoded in `cuisine_category_multiplier`.
        // This is what gives the *category*-combination curves their
        // cross-cuisine spread (paper: average Eq. 2 distance 0.052, larger
        // than the ingredient-combination 0.035).
        let category_jitter: [f64; Category::COUNT] = {
            let mut j = [1.0f64; Category::COUNT];
            for v in &mut j {
                *v = normal(&mut rng, 0.0, 0.4).exp();
            }
            j
        };

        // Resolve the overrepresented list to boost positions.
        let mut boost_pos: Vec<Option<usize>> = vec![None; lexicon.len()];
        for (pos, name) in info.overrepresented.iter().enumerate() {
            let id = lexicon
                .resolve(name)
                .unwrap_or_else(|| panic!("Table-I ingredient {name:?} missing from lexicon"));
            boost_pos[id.index()] = Some(pos);
        }
        // Boosted weights anchor to a fixed head-rank weight (not the
        // item's own global weight): Table I lists mid-rank items like
        // Tortilla among the top overrepresented, which a multiplicative
        // boost of their own tail weight could never lift high enough.
        let anchor = prior.weight_of_rank(4).powf(exponent_scale);

        // Score every entity.
        let mut scored: Vec<(IngredientId, f64)> = lexicon
            .ids()
            .map(|id| {
                let cat = lexicon.category(id);
                let w = match boost_pos[id.index()] {
                    // Deterministic (noise-free) so the published Table-I
                    // order is reproduced reliably.
                    Some(pos) => anchor * overrepresentation_boost(pos),
                    None => {
                        // Lognormal noise: exp(Normal(0, 0.6)). Keeps
                        // weights positive while reshuffling mid-tail
                        // vocabulary membership between cuisines.
                        let noise = normal(&mut rng, 0.0, 0.6).exp();
                        // weight^scale == rank^(-s * scale): the jittered
                        // per-cuisine Zipf exponent.
                        prior.weight(id).powf(exponent_scale)
                            * cuisine_category_multiplier(info.code, cat)
                            * category_jitter[cat.index()]
                            * noise
                    }
                };
                (id, w)
            })
            .collect();

        // Vocabulary = the `info.ingredients` highest-weight entities.
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite weights"));
        scored.truncate(info.ingredients.min(lexicon.len()));
        let vocabulary: Vec<IngredientId> = scored.iter().map(|&(id, _)| id).collect();
        let mut weights: Vec<f64> = scored.iter().map(|&(_, w)| w).collect();

        // Fatten the tail with a uniform blend so every vocabulary item has
        // realistic odds of appearing at least once (the Table-I
        // "Ingredients" column counts *observed* uniques). Without this,
        // rank-700 Zipf mass is so thin that small cuisines (CAM: 470
        // recipes) would realize well under their published vocabulary.
        const TAIL_BLEND: f64 = 0.35;
        let uniform_share = weights.iter().sum::<f64>() * TAIL_BLEND / weights.len() as f64;
        for w in &mut weights {
            *w += uniform_share;
        }

        // Per-cuisine mean-size jitter: Fig. 1's per-cuisine curves peak
        // between roughly 8 and 10, not at exactly one value. Shifting the
        // size law also shifts how saturated the common categories are,
        // which spreads the category-combination curves (Fig. 3b).
        let mut size_law = SizeLaw::default();
        size_law.mean += normal(&mut rng, 0.0, 0.55).clamp(-1.2, 1.2);

        CuisineProfile {
            cuisine,
            vocabulary,
            weights,
            size_law,
            target_recipes: info.recipes,
        }
    }

    /// Vocabulary size.
    pub fn vocab_len(&self) -> usize {
        self.vocabulary.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuisine_data::CUISINES;

    fn setup() -> (&'static Lexicon, GlobalPrior) {
        let lex = Lexicon::standard();
        (lex, GlobalPrior::new(lex, 1.0, 11))
    }

    #[test]
    fn vocabulary_matches_table1_ingredient_count() {
        let (lex, prior) = setup();
        for cuisine in CuisineId::all() {
            let p = CuisineProfile::standard(cuisine, lex, &prior, 1);
            assert_eq!(
                p.vocab_len(),
                cuisine.info().ingredients,
                "{}",
                cuisine.code()
            );
        }
    }

    #[test]
    fn vocabulary_has_no_duplicates() {
        let (lex, prior) = setup();
        let p = CuisineProfile::standard(CuisineId(0), lex, &prior, 1);
        let mut v = p.vocabulary.clone();
        v.sort_unstable();
        v.dedup();
        assert_eq!(v.len(), p.vocab_len());
    }

    #[test]
    fn overrepresented_ingredients_are_in_vocabulary_with_high_weight() {
        let (lex, prior) = setup();
        for cuisine in CuisineId::all() {
            let p = CuisineProfile::standard(cuisine, lex, &prior, 1);
            for name in cuisine.info().overrepresented {
                let id = lex.resolve(name).unwrap();
                let pos = p.vocabulary.iter().position(|&v| v == id);
                assert!(
                    pos.is_some(),
                    "{}: overrepresented {name:?} missing from vocabulary",
                    cuisine.code()
                );
                // Boosted staples should sit in the top decile of weights.
                assert!(
                    pos.unwrap() < p.vocab_len() / 4,
                    "{}: {name:?} at position {} of {}",
                    cuisine.code(),
                    pos.unwrap(),
                    p.vocab_len()
                );
            }
        }
    }

    #[test]
    fn weights_are_positive_and_descending() {
        let (lex, prior) = setup();
        let p = CuisineProfile::standard(CuisineId(3), lex, &prior, 1);
        assert!(p.weights.iter().all(|&w| w > 0.0));
        for w in p.weights.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn profiles_are_seed_deterministic() {
        let (lex, prior) = setup();
        let a = CuisineProfile::standard(CuisineId(7), lex, &prior, 5);
        let b = CuisineProfile::standard(CuisineId(7), lex, &prior, 5);
        assert_eq!(a.vocabulary, b.vocabulary);
        let c = CuisineProfile::standard(CuisineId(7), lex, &prior, 6);
        assert_ne!(a.vocabulary, c.vocabulary, "different seed, different vocabulary");
    }

    #[test]
    fn different_cuisines_get_different_vocabularies() {
        let (lex, prior) = setup();
        let ita = CuisineProfile::standard("ITA".parse().unwrap(), lex, &prior, 1);
        let jpn = CuisineProfile::standard("JPN".parse().unwrap(), lex, &prior, 1);
        assert_ne!(ita.vocabulary, jpn.vocabulary);
    }

    #[test]
    fn spice_weight_share_ranks_insc_above_jpn() {
        let (lex, prior) = setup();
        let share = |code: &str| {
            let p = CuisineProfile::standard(code.parse().unwrap(), lex, &prior, 1);
            let total: f64 = p.weights.iter().sum();
            let spice: f64 = p
                .vocabulary
                .iter()
                .zip(&p.weights)
                .filter(|&(&id, _)| lex.category(id) == Category::Spice)
                .map(|(_, &w)| w)
                .sum();
            spice / total
        };
        assert!(
            share("INSC") > 2.0 * share("JPN"),
            "INSC {} vs JPN {}",
            share("INSC"),
            share("JPN")
        );
    }

    #[test]
    fn category_multipliers_are_positive() {
        for c in &CUISINES {
            for cat in Category::ALL {
                assert!(cuisine_category_multiplier(c.code, cat) > 0.0);
            }
        }
    }

    #[test]
    fn size_law_default_matches_paper() {
        let law = SizeLaw::default();
        assert_eq!(law.min, 2);
        assert_eq!(law.max, 38);
        assert!((law.mean - 9.0).abs() < 1e-12);
        // Mixture mean stays near 9.
        let mix_mean = (1.0 - law.tail_weight) * law.mean + law.tail_weight * law.tail_mean;
        assert!((mix_mean - 9.0).abs() < 0.5, "mixture mean {mix_mean}");
    }

    #[test]
    fn size_law_samples_respect_bounds_and_reach_the_tail() {
        use rand::SeedableRng;
        let law = SizeLaw::default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut max_seen = 0;
        let mut sum = 0usize;
        let n = 200_000;
        for _ in 0..n {
            let s = law.sample(&mut rng, usize::MAX);
            assert!((2..=38).contains(&s));
            max_seen = max_seen.max(s);
            sum += s;
        }
        let mean = sum as f64 / n as f64;
        assert!((mean - 9.0).abs() < 0.5, "mean {mean}");
        assert!(max_seen >= 28, "tail never reached: max {max_seen}");
    }

    #[test]
    fn size_law_cap_is_respected() {
        use rand::SeedableRng;
        let law = SizeLaw::default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        for _ in 0..5_000 {
            assert!(law.sample(&mut rng, 12) <= 12);
        }
    }
}
