//! # cuisine-synth
//!
//! Calibrated synthetic recipe-corpus generator — the workspace's
//! substitute for the paper's 158,544-recipe web scrape, which is not
//! redistributable (see DESIGN.md, substitution table).
//!
//! The generator reproduces exactly the statistics the paper's evaluation
//! consumes:
//!
//! - per-cuisine recipe counts and unique-ingredient counts (Table I),
//! - the truncated-Gaussian recipe-size law, bounded [2, 38], mean ≈ 9
//!   (Fig. 1),
//! - Zipfian ingredient popularity with cuisine-specific category profiles
//!   (Figs. 2-3),
//! - the designated overrepresented ingredients of each cuisine (Table I).
//!
//! ```
//! use cuisine_lexicon::Lexicon;
//! use cuisine_synth::{generate_corpus, SynthConfig};
//!
//! let lex = Lexicon::standard();
//! let corpus = generate_corpus(&SynthConfig::test_scale(42), lex);
//! assert_eq!(corpus.populated_cuisines().len(), 25);
//! ```

#![warn(missing_docs)]

pub mod calibration;
pub mod generator;
pub mod popularity;
pub mod profile;

pub use calibration::{CalibrationReport, CuisineCalibration};
pub use generator::{generate_corpus, generate_cuisine, standard_profiles, SynthConfig};
pub use popularity::GlobalPrior;
pub use profile::{CuisineProfile, SizeLaw};
