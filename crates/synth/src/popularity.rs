//! Global ingredient popularity prior.
//!
//! Recipe-aggregator data shows a Zipf-like global popularity ordering with
//! pantry staples (salt, butter, onion, sugar, …) at the head. The prior
//! built here assigns every lexicon entity a global rank — staples first in
//! a fixed order, the remainder in a seeded shuffle — and Zipf weights
//! `rank^-s` on top.

use cuisine_lexicon::{IngredientId, Lexicon};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Global staples, in approximate descending real-world popularity. These
/// occupy the head ranks of the global prior. The list deliberately covers
//  every Table-I overrepresented ingredient so cuisines can boost them.
/// (Unknown names are skipped defensively, but a unit test pins full
/// coverage.)
pub const STAPLES: &[&str] = &[
    "Salt", "Butter", "Sugar", "Onion", "Garlic", "Egg", "Flour", "Water",
    "Olive", "Black Pepper", "Milk", "Tomato", "Vegetable Oil", "Cream",
    "Lemon Juice", "Chicken", "Vanilla Extract", "Brown Sugar", "Cheese",
    "Baking Powder", "Carrot", "Vanilla", "Ginger", "Cinnamon", "Beef",
    "Celery", "Lime", "Cilantro", "Cumin", "Baking Soda", "Parsley", "Rice",
    "Vinegar", "Soybean Sauce", "Honey", "Potato", "Bell Pepper", "Chili",
    "Mushroom", "Cayenne", "Paprika", "Oregano", "Basil", "Thyme", "Bread",
    "Corn", "Mustard", "Sesame", "Parmesan Cheese", "Bacon", "Scallion",
    "Yogurt", "Coconut", "Turmeric", "Pork", "Nutmeg", "Feta Cheese",
    "Shrimp", "Lemon", "Spinach", "Sour Cream", "Apple", "Fish",
    "Swiss Cheese", "Coconut Milk", "Cheddar Cheese", "Tortilla", "Allspice",
    "Mint", "Almond", "Rum", "Pineapple", "Sake", "Garam Masala", "Oats",
    "Macaroni", "Cream Cheese", "Walnut", "Peanut", "Raisin", "Mozzarella",
    "Cucumber", "Zucchini", "Avocado", "Orange Juice", "Chocolate",
    "Chocolate Chip", "Cabbage", "Wine", "White Wine", "Red Wine", "Pasta",
    "Pea", "Green Bean", "Lentil", "Chickpea", "Clove", "Cardamom",
    "Coriander", "Cornstarch", "Maple Syrup", "Cocoa", "Powdered Sugar",
    "Sesame Oil", "Tofu", "Rosemary", "Dill", "Sage", "Bay Leaf",
];

/// The global popularity prior: a rank for every lexicon entity (1-based,
/// lower = more popular) and the corresponding Zipf weights.
#[derive(Debug, Clone)]
pub struct GlobalPrior {
    /// `ranks[id] = 1-based global rank of that entity`.
    ranks: Vec<usize>,
    /// `weights[id] = rank^-s`.
    weights: Vec<f64>,
}

impl GlobalPrior {
    /// Build the prior over a lexicon: staples head the order, the rest
    /// follow in a shuffle seeded by `seed`.
    ///
    /// # Panics
    /// Panics when the Zipf exponent `s` is not finite and positive.
    pub fn new(lexicon: &Lexicon, s: f64, seed: u64) -> Self {
        assert!(s.is_finite() && s > 0.0, "Zipf exponent must be positive, got {s}");
        let n = lexicon.len();
        let mut order: Vec<IngredientId> = Vec::with_capacity(n);
        let mut placed = vec![false; n];
        for name in STAPLES {
            if let Some(id) = lexicon.resolve(name) {
                if !placed[id.index()] {
                    placed[id.index()] = true;
                    order.push(id);
                }
            }
        }
        let mut rest: Vec<IngredientId> =
            lexicon.ids().filter(|id| !placed[id.index()]).collect();
        // Fisher-Yates with the workspace's seeded RNG.
        let mut rng = StdRng::seed_from_u64(seed);
        for i in (1..rest.len()).rev() {
            let j = rng.random_range(0..=i);
            rest.swap(i, j);
        }
        order.extend(rest);

        let mut ranks = vec![0usize; n];
        let mut weights = vec![0.0f64; n];
        for (pos, id) in order.iter().enumerate() {
            let rank = pos + 1;
            ranks[id.index()] = rank;
            weights[id.index()] = (rank as f64).powf(-s);
        }
        GlobalPrior { ranks, weights }
    }

    /// 1-based global rank of an entity.
    pub fn rank(&self, id: IngredientId) -> usize {
        self.ranks[id.index()]
    }

    /// Zipf weight of an entity.
    pub fn weight(&self, id: IngredientId) -> f64 {
        self.weights[id.index()]
    }

    /// Zipf weight of a 1-based global rank (independent of which entity
    /// holds it). Used to anchor overrepresentation boosts to head-rank
    /// scale.
    pub fn weight_of_rank(&self, rank: usize) -> f64 {
        assert!(rank >= 1, "ranks are 1-based");
        // All weights share the same rank^-s law, so recover s-scaled value
        // from any stored weight: weights are rank^-s exactly.
        let probe = self
            .ranks
            .iter()
            .position(|&r| r == 1)
            .expect("rank 1 always assigned");
        // weights[probe] = 1^-s = 1; reconstruct s from rank 2.
        let probe2 = self.ranks.iter().position(|&r| r == 2);
        let s = match probe2 {
            Some(idx) => -(self.weights[idx].ln() / 2f64.ln()),
            None => return self.weights[probe], // single-entity prior
        };
        (rank as f64).powf(-s)
    }

    /// Number of entities covered.
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// True when the prior covers no entities.
    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuisine_data::CUISINES;

    #[test]
    fn staples_all_resolve_and_are_unique() {
        let lex = Lexicon::standard();
        let mut seen = std::collections::HashSet::new();
        for name in STAPLES {
            let id = lex
                .resolve(name)
                .unwrap_or_else(|| panic!("staple {name:?} missing from lexicon"));
            assert!(seen.insert(id), "staple {name:?} duplicated");
        }
    }

    #[test]
    fn staples_cover_all_table1_overrepresented() {
        let lex = Lexicon::standard();
        let staple_ids: std::collections::HashSet<_> =
            STAPLES.iter().map(|n| lex.resolve(n).unwrap()).collect();
        for c in &CUISINES {
            for name in c.overrepresented {
                let id = lex.resolve(name).unwrap();
                assert!(
                    staple_ids.contains(&id),
                    "{} overrepresented {name:?} not in STAPLES",
                    c.code
                );
            }
        }
    }

    #[test]
    fn ranks_are_a_permutation() {
        let lex = Lexicon::standard();
        let prior = GlobalPrior::new(lex, 1.0, 7);
        let mut ranks: Vec<usize> = lex.ids().map(|id| prior.rank(id)).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, (1..=lex.len()).collect::<Vec<_>>());
    }

    #[test]
    fn staples_precede_non_staples() {
        let lex = Lexicon::standard();
        let prior = GlobalPrior::new(lex, 1.0, 7);
        let salt = lex.resolve("Salt").unwrap();
        assert_eq!(prior.rank(salt), 1);
        let butter = lex.resolve("Butter").unwrap();
        assert_eq!(prior.rank(butter), 2);
        // Anything not in STAPLES ranks below every staple.
        let kokum = lex.resolve("Kokum").unwrap();
        assert!(prior.rank(kokum) > STAPLES.len() - 2);
    }

    #[test]
    fn weights_follow_zipf() {
        let lex = Lexicon::standard();
        let prior = GlobalPrior::new(lex, 1.2, 7);
        let salt = lex.resolve("Salt").unwrap();
        let butter = lex.resolve("Butter").unwrap();
        assert!((prior.weight(salt) - 1.0).abs() < 1e-12);
        assert!((prior.weight(butter) - 2f64.powf(-1.2)).abs() < 1e-12);
    }

    #[test]
    fn tail_order_is_seed_deterministic() {
        let lex = Lexicon::standard();
        let a = GlobalPrior::new(lex, 1.0, 42);
        let b = GlobalPrior::new(lex, 1.0, 42);
        let c = GlobalPrior::new(lex, 1.0, 43);
        let ranks = |p: &GlobalPrior| -> Vec<usize> { lex.ids().map(|id| p.rank(id)).collect() };
        assert_eq!(ranks(&a), ranks(&b));
        assert_ne!(ranks(&a), ranks(&c), "different seeds should shuffle the tail differently");
    }
}
