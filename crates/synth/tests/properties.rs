//! Property-based tests for the synthetic corpus generator.

use cuisine_data::CuisineId;
use cuisine_lexicon::Lexicon;
use cuisine_synth::{generate_cuisine, CuisineProfile, GlobalPrior, SynthConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any cuisine profile generates valid recipe sets under any seed.
    #[test]
    fn generated_recipes_are_valid_sets(
        cuisine_idx in 0usize..25,
        seed in any::<u64>(),
        n in 1usize..60,
    ) {
        let lex = Lexicon::standard();
        let prior = GlobalPrior::new(lex, 1.0, seed);
        let profile =
            CuisineProfile::standard(CuisineId(cuisine_idx as u8), lex, &prior, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 1);
        let recipes = generate_cuisine(&profile, n, &mut rng);
        prop_assert_eq!(recipes.len(), n);
        let vocab: std::collections::HashSet<_> = profile.vocabulary.iter().copied().collect();
        for r in &recipes {
            prop_assert!(r.size() >= 2 && r.size() <= 38, "size {}", r.size());
            for w in r.ingredients().windows(2) {
                prop_assert!(w[0] < w[1], "not a sorted set");
            }
            for ing in r.ingredients() {
                prop_assert!(vocab.contains(ing), "outside vocabulary");
            }
        }
    }

    /// Vocabulary size always matches the Table-I target, regardless of
    /// seed.
    #[test]
    fn vocabulary_size_is_invariant(cuisine_idx in 0usize..25, seed in any::<u64>()) {
        let lex = Lexicon::standard();
        let cuisine = CuisineId(cuisine_idx as u8);
        let prior = GlobalPrior::new(lex, 1.0, seed);
        let profile = CuisineProfile::standard(cuisine, lex, &prior, seed);
        prop_assert_eq!(profile.vocab_len(), cuisine.info().ingredients);
        // Weights parallel the vocabulary and are positive.
        prop_assert_eq!(profile.weights.len(), profile.vocab_len());
        prop_assert!(profile.weights.iter().all(|&w| w > 0.0 && w.is_finite()));
    }

    /// Overrepresented ingredients survive the jitter into every seed's
    /// vocabulary.
    #[test]
    fn overrepresented_always_in_vocabulary(cuisine_idx in 0usize..25, seed in any::<u64>()) {
        let lex = Lexicon::standard();
        let cuisine = CuisineId(cuisine_idx as u8);
        let prior = GlobalPrior::new(lex, 1.0, seed);
        let profile = CuisineProfile::standard(cuisine, lex, &prior, seed);
        for name in cuisine.info().overrepresented {
            let id = lex.resolve(name).unwrap();
            prop_assert!(
                profile.vocabulary.contains(&id),
                "{}: {name:?} missing under seed {seed}",
                cuisine.code()
            );
        }
    }

    /// The generator's per-cuisine recipe-count arithmetic is exact at any
    /// scale.
    #[test]
    fn recipes_for_is_scaled_and_positive(scale in 0.001f64..1.0) {
        let config = SynthConfig { seed: 1, scale, ..Default::default() };
        for cuisine in CuisineId::all() {
            let n = config.recipes_for(cuisine);
            prop_assert!(n >= 1);
            let exact = (cuisine.info().recipes as f64 * scale).round() as usize;
            prop_assert_eq!(n, exact.max(1));
        }
    }
}
