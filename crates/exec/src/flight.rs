//! A one-shot waiter/notify cell for single-flight request coalescing.
//!
//! The serving layer's `/evolve` endpoint is deterministic: two identical
//! in-flight requests would compute byte-identical responses, so the
//! second one is pure duplicated work. Single-flight coalescing keys every
//! in-flight computation and lets later arrivals *attach* to the first
//! one instead of recomputing. [`Flight`] is the synchronization cell that
//! makes the fan-out safe:
//!
//! * the **leader** runs the computation and calls [`Flight::complete`]
//!   exactly once (later completions are ignored — first write wins, so a
//!   racing duplicate completion cannot change what waiters observe);
//! * **waiters** either block ([`Flight::wait_timeout`]) or poll
//!   ([`Flight::try_get`]) — the polling form is what a non-blocking
//!   connection shard needs: it must keep serving its other connections
//!   while one of them waits for a result.
//!
//! The value is `Clone` because one result fans out to every waiter. In
//! the serving layer the payload is an `Arc`-bodied response, so a clone
//! is a pointer bump, not a body copy.

use std::sync::Condvar;
use std::time::Duration;

use crate::lockorder::{self, OrderedMutex};

/// A write-once cell: one completion, any number of waiters.
///
/// See the [module docs](self). All methods are safe to call from any
/// thread; poisoning is tolerated (the [`OrderedMutex`] heals it and
/// counts the recovery — waiters must never deadlock because some
/// unrelated holder panicked), and every acquisition is checked against
/// the declared lock order in debug builds.
#[derive(Debug)]
pub struct Flight<T> {
    slot: OrderedMutex<Option<T>>,
    ready: Condvar,
}

impl<T> Default for Flight<T> {
    fn default() -> Self {
        Flight {
            slot: OrderedMutex::new(lockorder::EXEC_FLIGHT_SLOT, None),
            ready: Condvar::new(),
        }
    }
}

impl<T: Clone> Flight<T> {
    /// An empty flight with no value yet.
    pub fn new() -> Self {
        Flight::default()
    }

    /// Publish the result and wake every waiter.
    ///
    /// The first completion wins; later calls are ignored, so a duplicate
    /// completion (e.g. a shed path racing the computation) cannot swap
    /// the value out from under a waiter that already observed it.
    pub fn complete(&self, value: T) {
        let mut slot = self.slot.lock();
        if slot.is_none() {
            *slot = Some(value);
        }
        drop(slot);
        self.ready.notify_all();
    }

    /// Non-blocking poll: the published value, if any.
    pub fn try_get(&self) -> Option<T> {
        self.slot.lock().clone()
    }

    /// Block until the value is published or `timeout` elapses.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<T> {
        let guard = self.slot.lock();
        let (guard, _timed_out) =
            guard.wait_timeout_while(&self.ready, timeout, |slot| slot.is_none());
        guard.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn try_get_sees_a_completion() {
        let flight = Flight::new();
        assert_eq!(flight.try_get(), None);
        flight.complete(7u32);
        assert_eq!(flight.try_get(), Some(7));
    }

    #[test]
    fn first_completion_wins() {
        let flight = Flight::new();
        flight.complete("first".to_string());
        flight.complete("second".to_string());
        assert_eq!(flight.try_get().as_deref(), Some("first"));
    }

    #[test]
    fn wait_timeout_returns_none_without_a_value() {
        let flight: Flight<u32> = Flight::new();
        assert_eq!(flight.wait_timeout(Duration::from_millis(20)), None);
    }

    #[test]
    fn waiters_across_threads_all_observe_the_value() {
        let flight = Arc::new(Flight::new());
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let flight = Arc::clone(&flight);
                std::thread::spawn(move || flight.wait_timeout(Duration::from_secs(10)))
            })
            .collect();
        std::thread::sleep(Duration::from_millis(20));
        flight.complete(42u64);
        for waiter in waiters {
            assert_eq!(waiter.join().unwrap(), Some(42));
        }
    }

    #[test]
    fn complete_after_wait_timeout_is_still_visible() {
        let flight = Flight::new();
        assert_eq!(flight.wait_timeout(Duration::from_millis(5)), None);
        flight.complete(1u8);
        assert_eq!(flight.wait_timeout(Duration::from_millis(5)), Some(1));
    }
}
