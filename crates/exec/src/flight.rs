//! A one-shot waiter/notify cell for single-flight request coalescing.
//!
//! The serving layer's `/evolve` endpoint is deterministic: two identical
//! in-flight requests would compute byte-identical responses, so the
//! second one is pure duplicated work. Single-flight coalescing keys every
//! in-flight computation and lets later arrivals *attach* to the first
//! one instead of recomputing. [`Flight`] is the synchronization cell that
//! makes the fan-out safe:
//!
//! * the **leader** runs the computation and calls [`Flight::complete`]
//!   exactly once (later completions are ignored — first write wins, so a
//!   racing duplicate completion cannot change what waiters observe);
//! * **waiters** either block ([`Flight::wait_timeout`]) or poll
//!   ([`Flight::try_get`]) — the polling form is what a non-blocking
//!   connection shard needs: it must keep serving its other connections
//!   while one of them waits for a result.
//!
//! The value is `Clone` because one result fans out to every waiter. In
//! the serving layer the payload is an `Arc`-bodied response, so a clone
//! is a pointer bump, not a body copy.

use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// A write-once cell: one completion, any number of waiters.
///
/// See the [module docs](self). All methods are safe to call from any
/// thread; poisoning is tolerated (a poisoned lock still yields the slot —
/// waiters must never deadlock because some unrelated holder panicked).
#[derive(Debug, Default)]
pub struct Flight<T> {
    slot: Mutex<Option<T>>,
    ready: Condvar,
}

impl<T: Clone> Flight<T> {
    /// An empty flight with no value yet.
    pub fn new() -> Self {
        Flight { slot: Mutex::new(None), ready: Condvar::new() }
    }

    /// Publish the result and wake every waiter.
    ///
    /// The first completion wins; later calls are ignored, so a duplicate
    /// completion (e.g. a shed path racing the computation) cannot swap
    /// the value out from under a waiter that already observed it.
    pub fn complete(&self, value: T) {
        let mut slot = match self.slot.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if slot.is_none() {
            *slot = Some(value);
        }
        drop(slot);
        self.ready.notify_all();
    }

    /// Non-blocking poll: the published value, if any.
    pub fn try_get(&self) -> Option<T> {
        match self.slot.lock() {
            Ok(guard) => guard.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }

    /// Block until the value is published or `timeout` elapses.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<T> {
        let guard = match self.slot.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        let (guard, _result) = match self
            .ready
            .wait_timeout_while(guard, timeout, |slot| slot.is_none())
        {
            Ok(pair) => pair,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn try_get_sees_a_completion() {
        let flight = Flight::new();
        assert_eq!(flight.try_get(), None);
        flight.complete(7u32);
        assert_eq!(flight.try_get(), Some(7));
    }

    #[test]
    fn first_completion_wins() {
        let flight = Flight::new();
        flight.complete("first".to_string());
        flight.complete("second".to_string());
        assert_eq!(flight.try_get().as_deref(), Some("first"));
    }

    #[test]
    fn wait_timeout_returns_none_without_a_value() {
        let flight: Flight<u32> = Flight::new();
        assert_eq!(flight.wait_timeout(Duration::from_millis(20)), None);
    }

    #[test]
    fn waiters_across_threads_all_observe_the_value() {
        let flight = Arc::new(Flight::new());
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let flight = Arc::clone(&flight);
                std::thread::spawn(move || flight.wait_timeout(Duration::from_secs(10)))
            })
            .collect();
        std::thread::sleep(Duration::from_millis(20));
        flight.complete(42u64);
        for waiter in waiters {
            assert_eq!(waiter.join().unwrap(), Some(42));
        }
    }

    #[test]
    fn complete_after_wait_timeout_is_still_visible() {
        let flight = Flight::new();
        assert_eq!(flight.wait_timeout(Duration::from_millis(5)), None);
        flight.complete(1u8);
        assert_eq!(flight.wait_timeout(Duration::from_millis(5)), Some(1));
    }
}
