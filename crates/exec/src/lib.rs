//! Deterministic parallel execution layer.
//!
//! Every fan-out point in the workspace — per-cuisine analytics, per-model
//! evaluation, per-replicate ensembles — shares the same requirements:
//!
//! 1. **Stable output order.** Result `i` corresponds to input `i`
//!    regardless of which worker computed it or when it finished.
//! 2. **Thread-count independence.** Work units receive no state derived
//!    from worker identity; any randomness is seeded from the *logical*
//!    index. Consequently `threads: Some(1)` and `threads: Some(32)`
//!    produce byte-identical artifacts.
//! 3. **No runtime dependency.** Plain `std::thread::scope` with contiguous
//!    chunked distribution; no work-stealing pool, no global executor, and
//!    no `unsafe`.
//!
//! The `threads` knob follows the convention of
//! `cuisine_evolution::EnsembleConfig`: `None` means "use available
//! parallelism", `Some(0)` and `Some(1)` both mean sequential, and
//! anything larger is clamped to the number of jobs.
//!
//! Work is split into `threads` contiguous chunks of near-equal size
//! (`base` or `base + 1` jobs). This is the right shape for this
//! workspace's workloads — 25 cuisines of broadly similar cost, or `R`
//! replicates of identical cost — and keeps the slot-based write-back
//! simple and `unsafe`-free: each worker owns a disjoint `&mut [Option<T>]`
//! obtained via `split_at_mut`.

#![forbid(unsafe_code)]

pub mod faults;
pub mod flight;
pub mod lockorder;
pub mod pool;

pub use faults::{panic_message, FaultAction, FaultCount, FaultPlan, Faults, FAULT_POINTS};
pub use flight::Flight;
pub use lockorder::{OrderedGuard, OrderedMutex};
pub use pool::{PoolFull, WorkerPool};

/// Spawn a long-lived, named *service* thread.
///
/// Almost all parallelism in the workspace is task-shaped and must go
/// through [`par_map_range`]/[`WorkerPool`] so thread count stays
/// value-neutral and panics are contained per task. A few threads are not
/// task-shaped: a listener accept loop, a connection shard's event loop —
/// they live for the whole server and own I/O state rather than compute a
/// value. This is the single sanctioned way to create one (the `X1` lint
/// rule bans raw `std::thread` use outside `cuisine-exec`), which keeps
/// every thread in the workspace discoverable from this crate.
///
/// The caller owns the returned handle and is responsible for arranging
/// shutdown (a stop flag, a closed channel) and joining it.
pub fn spawn_service<F>(name: &str, f: F) -> std::io::Result<std::thread::JoinHandle<()>>
where
    F: FnOnce() + Send + 'static,
{
    std::thread::Builder::new().name(name.to_string()).spawn(f)
}

/// Resolve a `threads: Option<usize>` knob against a job count.
///
/// * `None` → `std::thread::available_parallelism()` (falling back to 1),
/// * `Some(n)` → `n`,
/// * the result is always clamped to `[1, max(jobs, 1)]`, so `Some(0)`
///   degrades to sequential and requesting more threads than jobs never
///   spawns idle workers.
pub fn resolve_threads(threads: Option<usize>, jobs: usize) -> usize {
    threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .clamp(1, jobs.max(1))
}

/// Split `n` jobs into `threads` contiguous `(start, len)` chunks whose
/// lengths differ by at most one. Chunks are returned in index order and
/// cover `0..n` exactly.
pub fn chunk_ranges(n: usize, threads: usize) -> Vec<(usize, usize)> {
    let threads = threads.clamp(1, n.max(1));
    let base = n / threads;
    let extra = n % threads;
    let mut out = Vec::with_capacity(threads);
    let mut start = 0;
    for t in 0..threads {
        let len = base + usize::from(t < extra);
        out.push((start, len));
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

/// Apply `f(index)` for every index in `0..n`, fanning out across at most
/// `threads` scoped workers, and return the results in index order.
///
/// `f` must depend only on the index (and captured shared state), never on
/// worker identity — that is what makes the output independent of the
/// thread count. The closure runs on the calling thread when the resolved
/// thread count is 1, so sequential runs pay no spawn overhead.
pub fn par_map_range<U, F>(n: usize, threads: Option<usize>, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let threads = resolve_threads(threads, n);
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }

    let mut out: Vec<Option<U>> = (0..n).map(|_| None).collect();
    let mut chunks: Vec<(usize, &mut [Option<U>])> = Vec::with_capacity(threads);
    {
        let mut rest: &mut [Option<U>] = &mut out;
        for (start, len) in chunk_ranges(n, threads) {
            let (head, tail) = rest.split_at_mut(len);
            chunks.push((start, head));
            rest = tail;
        }
    }

    std::thread::scope(|scope| {
        for (start, slots) in chunks {
            let f = &f;
            scope.spawn(move || {
                for (offset, slot) in slots.iter_mut().enumerate() {
                    *slot = Some(f(start + offset));
                }
            });
        }
    });

    out.into_iter()
        .map(|slot| slot.expect("every job slot filled"))
        .collect()
}

/// Map `f(index, &item)` over a slice with stable output order, fanning out
/// across at most `threads` scoped workers.
///
/// This is the shared backbone behind per-cuisine analytics fan-out and
/// per-model evaluation. See [`par_map_range`] for the determinism
/// contract.
pub fn par_map_indexed<T, U, F>(items: &[T], threads: Option<usize>, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_range(items.len(), threads, |i| f(i, &items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_exactly() {
        for n in 0..40 {
            for threads in 1..10 {
                let chunks = chunk_ranges(n, threads);
                let total: usize = chunks.iter().map(|&(_, len)| len).sum();
                assert_eq!(total, n, "n={n} threads={threads}");
                let mut expect = 0;
                for &(start, len) in &chunks {
                    assert_eq!(start, expect);
                    expect += len;
                }
                // Near-equal: lengths differ by at most one.
                let lens: Vec<usize> = chunks.iter().map(|&(_, l)| l).collect();
                let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                assert!(max - min <= 1, "n={n} threads={threads}: {lens:?}");
            }
        }
    }

    #[test]
    fn resolve_threads_clamps() {
        assert_eq!(resolve_threads(Some(0), 10), 1);
        assert_eq!(resolve_threads(Some(1), 10), 1);
        assert_eq!(resolve_threads(Some(4), 10), 4);
        assert_eq!(resolve_threads(Some(64), 10), 10);
        assert_eq!(resolve_threads(Some(64), 0), 1);
        assert!(resolve_threads(None, 8) >= 1);
        assert!(resolve_threads(None, 8) <= 8);
    }

    #[test]
    fn map_range_preserves_order() {
        for threads in [None, Some(0), Some(1), Some(2), Some(3), Some(8), Some(100)] {
            let got = par_map_range(23, threads, |i| i * i);
            let want: Vec<usize> = (0..23).map(|i| i * i).collect();
            assert_eq!(got, want, "threads={threads:?}");
        }
    }

    #[test]
    fn map_indexed_matches_sequential() {
        let items: Vec<String> = (0..17).map(|i| format!("item-{i}")).collect();
        let seq = par_map_indexed(&items, Some(1), |i, s| format!("{i}:{s}"));
        for threads in [2, 5, 16] {
            let par = par_map_indexed(&items, Some(threads), |i, s| format!("{i}:{s}"));
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(par_map_indexed(&empty, Some(8), |_, x| *x).is_empty());
        assert_eq!(par_map_range(0, None, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_range(1, Some(8), |i| i + 41), vec![41]);
    }

    #[test]
    fn workers_actually_run_in_parallel_when_asked() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Barrier;
        // Two jobs, two threads, a barrier both must reach: only passes if
        // the jobs genuinely overlap in time.
        let barrier = Barrier::new(2);
        let ran = AtomicUsize::new(0);
        let out = par_map_range(2, Some(2), |i| {
            barrier.wait();
            ran.fetch_add(1, Ordering::SeqCst);
            i
        });
        assert_eq!(out, vec![0, 1]);
        assert_eq!(ran.load(Ordering::SeqCst), 2);
    }
}
