//! Runtime lock-order witness: the dynamic half of the `C1`–`C3`
//! concurrency contract.
//!
//! The workspace's lock web — the registry entry map, the evolve
//! in-flight map, two response LRUs, the single-flight slot, the worker
//! pool's receiver and panic log, and the fault plan — is governed by a
//! single declared acquisition order (the `[lockorder]` table in
//! `lint.toml`). `cuisine-lint`'s `C1` rule enforces that order
//! *statically* over guard lifetimes; this module enforces the *same*
//! table *dynamically* in debug builds, so the concurrency, registry,
//! and chaos integration suites double as order-violation detectors.
//!
//! [`OrderedMutex`] is a thin wrapper over [`std::sync::Mutex`] carrying
//! a [`Rank`] from the declared table. Under `cfg(debug_assertions)`
//! every acquisition pushes its rank onto a thread-local held stack and
//! panics — naming both locks — if any held rank is greater than or
//! equal to the new one (equal catches same-lock re-entry, which would
//! deadlock on `std`'s non-reentrant mutex). Release builds compile the
//! witness down to nothing: no thread-local, no branch, just the inner
//! mutex.
//!
//! Poisoning is healed centrally here rather than at every call site:
//! [`OrderedMutex::lock`] recovers a poisoned mutex with
//! [`PoisonError::into_inner`](std::sync::PoisonError::into_inner) and
//! counts the recovery in a process-wide counter surfaced as
//! `poisoned_lock_recoveries` on the serve stack's `/metrics`. The
//! protected state is always left consistent by construction (panics are
//! contained by `catch_unwind` at pool/job boundaries before they can
//! tear a multi-step update), so continuing past a poisoned flag is
//! sound — but it must be *visible*, not silently swallowed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// One row of the declared lock-order table: a stable index (the
/// acquisition rank — lower acquires first) and the human-readable site
/// name used in violation panics and in `lint.toml [lockorder]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rank {
    /// Position in the declared order; a lock may only be acquired while
    /// every held lock has a *smaller* index.
    pub index: usize,
    /// Declared site name, e.g. `"registry.entries"`.
    pub name: &'static str,
}

/// `registry.entries` — the corpus registry's entry map.
pub const REGISTRY_ENTRIES: Rank = Rank { index: 0, name: "registry.entries" };
/// `evolve.inflight` — the evolve engine's in-flight coalescing map.
pub const EVOLVE_INFLIGHT: Rank = Rank { index: 1, name: "evolve.inflight" };
/// `serve.lru` — the GET response cache.
pub const SERVE_LRU: Rank = Rank { index: 2, name: "serve.lru" };
/// `serve.evolve_cache` — the evolve response cache.
pub const SERVE_EVOLVE_CACHE: Rank = Rank { index: 3, name: "serve.evolve_cache" };
/// `exec.flight.slot` — a single-flight result slot.
pub const EXEC_FLIGHT_SLOT: Rank = Rank { index: 4, name: "exec.flight.slot" };
/// `exec.pool.rx` — a worker pool's shared job receiver.
pub const EXEC_POOL_RX: Rank = Rank { index: 5, name: "exec.pool.rx" };
/// `exec.pool.panic_log` — a worker pool's last-panic message slot.
pub const EXEC_POOL_PANIC_LOG: Rank = Rank { index: 6, name: "exec.pool.panic_log" };
/// `exec.faults.plan` — the installed fault-injection plan.
pub const EXEC_FAULTS_PLAN: Rank = Rank { index: 7, name: "exec.faults.plan" };

/// The full declared table, in acquisition order. Must stay in sync with
/// `lint.toml [lockorder]` (a test asserts it) — the static `C1` pass
/// and this runtime witness enforce the same contract or neither is
/// trustworthy.
pub const TABLE: &[Rank] = &[
    REGISTRY_ENTRIES,
    EVOLVE_INFLIGHT,
    SERVE_LRU,
    SERVE_EVOLVE_CACHE,
    EXEC_FLIGHT_SLOT,
    EXEC_POOL_RX,
    EXEC_POOL_PANIC_LOG,
    EXEC_FAULTS_PLAN,
];

/// Process-wide count of poisoned-lock recoveries (see module docs).
static POISON_RECOVERIES: AtomicU64 = AtomicU64::new(0);

/// How many times any [`OrderedMutex`] in this process healed a poisoned
/// lock. Exposed as `poisoned_lock_recoveries` on `/metrics`; a nonzero
/// value in production means a panic escaped its containment boundary
/// while a guard was live and deserves a look.
pub fn poison_recoveries() -> u64 {
    POISON_RECOVERIES.load(Ordering::Relaxed)
}

fn heal<T>(result: Result<T, std::sync::PoisonError<T>>) -> T {
    match result {
        Ok(value) => value,
        Err(poisoned) => {
            POISON_RECOVERIES.fetch_add(1, Ordering::Relaxed);
            poisoned.into_inner()
        }
    }
}

#[cfg(debug_assertions)]
mod witness {
    use super::Rank;
    use std::cell::RefCell;

    thread_local! {
        static HELD: RefCell<Vec<Rank>> = const { RefCell::new(Vec::new()) };
    }

    pub(super) fn push(rank: Rank) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(&blocking) = held.iter().find(|&&h| h.index >= rank.index) {
                panic!(
                    "lock-order violation: acquiring `{}` (rank {}) while `{}` (rank {}) is \
                     held; declared order is the [lockorder] table in lint.toml",
                    rank.name, rank.index, blocking.name, blocking.index
                );
            }
            held.push(rank);
        });
    }

    pub(super) fn pop(rank: Rank) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(at) = held.iter().rposition(|h| h.index == rank.index) {
                held.remove(at);
            }
        });
    }
}

#[cfg(not(debug_assertions))]
mod witness {
    pub(super) fn push(_rank: super::Rank) {}
    pub(super) fn pop(_rank: super::Rank) {}
}

/// A [`Mutex`] that knows its place in the declared lock order.
///
/// Debug builds verify every acquisition against the thread's held-rank
/// stack (see module docs); release builds add zero overhead. Poisoning
/// is healed and counted centrally, so call sites never see a
/// [`LockResult`](std::sync::LockResult) — [`lock`](Self::lock) returns
/// the guard directly.
#[derive(Debug)]
pub struct OrderedMutex<T> {
    rank: Rank,
    inner: Mutex<T>,
}

impl<T> OrderedMutex<T> {
    /// Wrap `value` in a mutex at `rank` (one of this module's declared
    /// rank constants).
    pub fn new(rank: Rank, value: T) -> Self {
        OrderedMutex { rank, inner: Mutex::new(value) }
    }

    /// This mutex's declared rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Acquire the lock, verifying order (debug) and healing poison.
    ///
    /// The rank is pushed onto the witness stack *before* blocking on the
    /// inner mutex: an ordering violation is reported even when the
    /// mis-ordered acquisition would deadlock rather than proceed.
    pub fn lock(&self) -> OrderedGuard<'_, T> {
        witness::push(self.rank);
        let inner = heal(self.inner.lock());
        OrderedGuard { inner: Some(inner), rank: self.rank }
    }
}

/// Guard returned by [`OrderedMutex::lock`]; pops the witness stack on
/// drop. The inner guard lives in an `Option` only so the condvar helper
/// can move it out and back without re-entering the witness.
#[derive(Debug)]
pub struct OrderedGuard<'a, T> {
    inner: Option<MutexGuard<'a, T>>,
    rank: Rank,
}

impl<T> OrderedGuard<'_, T> {
    /// Block on `condvar` until `condition` returns false or `timeout`
    /// elapses, releasing the inner mutex while parked exactly as
    /// [`Condvar::wait_timeout_while`] does. Returns the re-acquired
    /// guard and whether the wait timed out.
    ///
    /// The witness rank stays on the held stack across the park: the
    /// thread cannot acquire anything else while blocked, and keeping the
    /// entry means the guard's drop stays single-pop.
    pub fn wait_timeout_while<F>(
        mut self,
        condvar: &Condvar,
        timeout: Duration,
        condition: F,
    ) -> (Self, bool)
    where
        F: FnMut(&mut T) -> bool,
    {
        let guard = self.inner.take().expect("guard present until drop");
        let (guard, timed_out) = match condvar.wait_timeout_while(guard, timeout, condition) {
            Ok((guard, result)) => (guard, result.timed_out()),
            Err(poisoned) => {
                POISON_RECOVERIES.fetch_add(1, Ordering::Relaxed);
                let (guard, result) = poisoned.into_inner();
                (guard, result.timed_out())
            }
        };
        self.inner = Some(guard);
        (self, timed_out)
    }
}

impl<T> std::ops::Deref for OrderedGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard present until drop")
    }
}

impl<T> std::ops::DerefMut for OrderedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard present until drop")
    }
}

impl<T> Drop for OrderedGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock first, then retire the witness entry.
        self.inner = None;
        witness::pop(self.rank);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn table_is_dense_and_uniquely_named() {
        for (i, rank) in TABLE.iter().enumerate() {
            assert_eq!(rank.index, i, "rank {} out of position", rank.name);
        }
        let mut names: Vec<&str> = TABLE.iter().map(|r| r.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), TABLE.len(), "duplicate rank name");
    }

    #[test]
    fn ascending_acquisition_is_clean() {
        let a = OrderedMutex::new(REGISTRY_ENTRIES, 1u32);
        let b = OrderedMutex::new(SERVE_LRU, 2u32);
        let c = OrderedMutex::new(EXEC_FAULTS_PLAN, 3u32);
        let ga = a.lock();
        let gb = b.lock();
        let gc = c.lock();
        assert_eq!(*ga + *gb + *gc, 6);
        drop(gc);
        drop(gb);
        drop(ga);
        // Out-of-order *release* is fine, and once everything is released
        // the stack is empty again — a low rank re-acquires cleanly.
        let gb = b.lock();
        let gc = c.lock();
        drop(gb);
        drop(gc);
        let ga = a.lock();
        drop(ga);
    }

    #[test]
    fn guard_reads_and_writes_through() {
        let m = OrderedMutex::new(SERVE_LRU, vec![1, 2, 3]);
        m.lock().push(4);
        assert_eq!(m.lock().len(), 4);
    }

    #[cfg(debug_assertions)]
    fn panics_in_thread<F: FnOnce() + Send + 'static>(f: F) -> String {
        let handle = std::thread::Builder::new()
            .name("lockorder-violation-probe".into())
            .spawn(f)
            .expect("spawn probe thread");
        let payload = handle.join().expect_err("probe was expected to panic");
        payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default()
    }

    #[cfg(debug_assertions)]
    #[test]
    fn inversion_panics_naming_both_locks() {
        let message = panics_in_thread(|| {
            let low = OrderedMutex::new(EVOLVE_INFLIGHT, ());
            let high = OrderedMutex::new(EXEC_POOL_RX, ());
            let _g_high = high.lock();
            let _g_low = low.lock();
        });
        assert!(message.contains("lock-order violation"), "got: {message}");
        assert!(message.contains("evolve.inflight"), "got: {message}");
        assert!(message.contains("exec.pool.rx"), "got: {message}");
    }

    #[cfg(debug_assertions)]
    #[test]
    fn same_rank_reentry_panics() {
        let message = panics_in_thread(|| {
            let a = OrderedMutex::new(EXEC_FLIGHT_SLOT, ());
            let b = OrderedMutex::new(EXEC_FLIGHT_SLOT, ());
            let _ga = a.lock();
            let _gb = b.lock();
        });
        assert!(message.contains("lock-order violation"), "got: {message}");
        assert!(message.contains("exec.flight.slot"), "got: {message}");
    }

    #[test]
    fn poison_is_healed_and_counted() {
        let m = Arc::new(OrderedMutex::new(SERVE_EVOLVE_CACHE, 7u32));
        let before = poison_recoveries();
        let poisoner = Arc::clone(&m);
        let result = std::thread::Builder::new()
            .name("lockorder-poisoner".into())
            .spawn(move || {
                let _guard = poisoner.inner.lock().expect("first acquisition");
                panic!("poison the mutex");
            })
            .expect("spawn poisoner thread")
            .join();
        assert!(result.is_err(), "poisoner must panic");
        assert_eq!(*m.lock(), 7, "state survives healing");
        assert!(poison_recoveries() > before, "recovery was not counted");
    }

    #[test]
    fn condvar_wait_reacquires_and_reports_timeout() {
        let m = OrderedMutex::new(EXEC_FLIGHT_SLOT, 0u32);
        let cv = Condvar::new();
        let guard = m.lock();
        let (guard, timed_out) =
            guard.wait_timeout_while(&cv, Duration::from_millis(5), |v| *v == 0);
        assert!(timed_out);
        assert_eq!(*guard, 0);
        drop(guard);
        // And the rank accounting survived the round trip: a fresh
        // ascending acquisition pair still verifies.
        let low = OrderedMutex::new(SERVE_LRU, ());
        let _gl = low.lock();
        let _gm = m.lock();
    }

    #[test]
    fn table_matches_lint_toml_lockorder() {
        // The static pass (lint.toml) and this witness must describe the
        // same order; parse the declared table with the same minimal
        // scanning the lint baseline parser uses.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../lint.toml");
        let text = std::fs::read_to_string(path).expect("read lint.toml");
        let mut declared: Vec<String> = Vec::new();
        let mut in_lock = false;
        for line in text.lines() {
            let line = line.trim();
            if line == "[[lockorder.lock]]" {
                in_lock = true;
                continue;
            }
            if line.starts_with('[') {
                in_lock = false;
                continue;
            }
            if in_lock {
                if let Some(rest) = line.strip_prefix("name") {
                    let rest = rest.trim_start().strip_prefix('=').unwrap_or("").trim();
                    let name = rest.trim_matches('"');
                    if !name.is_empty() {
                        declared.push(name.to_string());
                        in_lock = false;
                    }
                }
            }
        }
        let table: Vec<&str> = TABLE.iter().map(|r| r.name).collect();
        assert_eq!(declared, table, "lint.toml [lockorder] diverged from lockorder::TABLE");
    }
}
