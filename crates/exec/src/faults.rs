//! Deterministic fault-injection plane.
//!
//! Robustness claims are only as good as the failures they were tested
//! against, and ad-hoc failure testing (pulling cables, killing processes)
//! is neither reproducible nor CI-friendly. This module provides a
//! **seeded, clock-free** fault plan: named injection points in the serve
//! stack consult an installed [`FaultPlan`] and receive an action to
//! perform (fail, panic, delay, short-write) on a schedule that is a pure
//! function of `(seed, point, occurrence index)` — the same plan against
//! the same request sequence fires the same faults, every run.
//!
//! Design constraints:
//!
//! * **Zero-cost when unconfigured.** Every hook goes through
//!   [`Faults::fire`], whose fast path is one relaxed atomic load of an
//!   `enabled` flag. A server that never installs a plan pays nothing
//!   else.
//! * **Clock-free determinism.** Schedules count *occurrences*, never
//!   wall time; the probabilistic schedule (`1in:K`) hashes the
//!   occurrence index with a splitmix64 finalizer instead of sampling an
//!   RNG, so there is no hidden mutable state and no ordering sensitivity
//!   between points.
//! * **Hot-swappable.** Plans install and clear atomically behind a
//!   mutex-guarded `Arc` (the `POST /admin/faults` endpoint swaps plans on
//!   a live server); firing counters live inside the plan so `/metrics`
//!   can report exactly what fired.
//!
//! The spec grammar (accepted by `serve --faults` and `POST
//! /admin/faults`) is a `;`-separated list of entries:
//!
//! ```text
//! seed=42;evolve.compute=delay:20@1in:64;registry.build=fail;conn.write=short-write@nth:3
//! ```
//!
//! Each entry is `point=action[@schedule]` where *action* is `fail`,
//! `panic`, `delay:MS`, or `short-write`, and *schedule* is `always`
//! (default), `nth:N` (fire exactly on the Nth occurrence, 1-based), or
//! `1in:K` (fire on a deterministic pseudo-random 1-in-K subset of
//! occurrences). The optional `seed=N` entry perturbs the `1in:K` hash.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::lockorder::{self, OrderedMutex};

/// The injection points the serve stack consults. Specs naming any other
/// point are rejected at parse time so typos fail loudly.
pub const FAULT_POINTS: &[&str] = &[
    "registry.build",
    "evolve.compute",
    "pool.dispatch",
    "conn.read",
    "conn.write",
    "snapshot.serialize",
];

/// What an injection point should do when its schedule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Fail the operation with an injected error (the hook decides what
    /// "error" means locally: a failed build, a dropped job, an I/O error).
    Fail,
    /// Panic with an `injected fault` payload; exercises `catch_unwind`
    /// containment and panic-message capture.
    Panic,
    /// Sleep for the given number of milliseconds before proceeding. A
    /// sleep is not a clock *read*, so delays stay inside the workspace
    /// determinism contract (rule D2 bans wall-clock reads, not waits).
    DelayMs(u64),
    /// For write-path hooks: write only a prefix of the buffer this round,
    /// forcing the caller's partial-write handling to resume. Non-write
    /// hooks treat it like [`FaultAction::Fail`].
    ShortWrite,
}

impl FaultAction {
    /// Apply the action at a compute-shaped (non-I/O) hook: sleep on
    /// [`FaultAction::DelayMs`], panic on [`FaultAction::Panic`] (the
    /// caller's `catch_unwind` is expected to contain it), and report
    /// [`FaultAction::Fail`] / [`FaultAction::ShortWrite`] as an injected
    /// error the caller turns into its local failure mode.
    pub fn apply(self, point: &str) -> Result<(), String> {
        match self {
            FaultAction::DelayMs(ms) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                Ok(())
            }
            FaultAction::Panic => panic!("injected fault: {point} panic"),
            FaultAction::Fail | FaultAction::ShortWrite => {
                Err(format!("injected fault: {point} fail"))
            }
        }
    }
}

/// When an injection point's action fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Schedule {
    /// Every occurrence.
    Always,
    /// Exactly the Nth occurrence (1-based), once.
    Nth(u64),
    /// A deterministic pseudo-random 1-in-K subset of occurrences.
    OneIn(u64),
}

/// One point's configured action, schedule, and firing counters.
#[derive(Debug)]
struct PointPlan {
    action: FaultAction,
    schedule: Schedule,
    occurrences: AtomicU64,
    fired: AtomicU64,
}

/// Occurrence/firing counters for one injection point, as reported by
/// [`FaultPlan::counts`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultCount {
    /// The injection point name.
    pub point: String,
    /// Times the point was consulted while this plan was installed.
    pub occurrences: u64,
    /// Times the schedule fired and the action was returned.
    pub fired: u64,
}

/// A parsed, seeded fault plan: per-point actions, schedules, and firing
/// counters. Immutable after parse apart from the counters.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    spec: String,
    points: BTreeMap<String, PointPlan>,
}

impl FaultPlan {
    /// Parse a spec string (see the [module docs](self) for the grammar).
    ///
    /// Errors name the offending entry; an empty spec is an error (clearing
    /// a live plan is the *caller's* concern — e.g. `{"clear": true}` on
    /// the admin endpoint — not an empty plan).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut seed = 0u64;
        let mut points = BTreeMap::new();
        let mut saw_entry = false;
        for raw in spec.split(';') {
            let entry = raw.trim();
            if entry.is_empty() {
                continue;
            }
            saw_entry = true;
            let Some((key, value)) = entry.split_once('=') else {
                return Err(format!("fault entry {entry:?} is not `point=action` or `seed=N`"));
            };
            let (key, value) = (key.trim(), value.trim());
            if key == "seed" {
                seed = value
                    .parse::<u64>()
                    .map_err(|_| format!("fault seed {value:?} is not a u64"))?;
                continue;
            }
            if !FAULT_POINTS.contains(&key) {
                return Err(format!(
                    "unknown fault point {key:?} (known: {})",
                    FAULT_POINTS.join(", ")
                ));
            }
            let (action_str, sched_str) = match value.split_once('@') {
                Some((a, s)) => (a.trim(), Some(s.trim())),
                None => (value, None),
            };
            let action = parse_action(action_str)?;
            let schedule = match sched_str {
                None => Schedule::Always,
                Some(s) => parse_schedule(s)?,
            };
            if points
                .insert(
                    key.to_string(),
                    PointPlan {
                        action,
                        schedule,
                        occurrences: AtomicU64::new(0),
                        fired: AtomicU64::new(0),
                    },
                )
                .is_some()
            {
                return Err(format!("fault point {key:?} configured twice"));
            }
        }
        if !saw_entry {
            return Err("empty fault spec".to_string());
        }
        if points.is_empty() {
            return Err("fault spec sets a seed but configures no points".to_string());
        }
        Ok(FaultPlan { seed, spec: spec.to_string(), points })
    }

    /// The spec string this plan was parsed from.
    pub fn spec(&self) -> &str {
        &self.spec
    }

    /// The seed perturbing the `1in:K` schedules.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Consult the plan at an injection point: bump its occurrence counter
    /// and return the configured action if the schedule fires.
    pub fn check(&self, point: &str) -> Option<FaultAction> {
        let plan = self.points.get(point)?;
        let occurrence = plan.occurrences.fetch_add(1, Ordering::Relaxed) + 1;
        let fires = match plan.schedule {
            Schedule::Always => true,
            Schedule::Nth(n) => occurrence == n,
            Schedule::OneIn(k) => {
                splitmix64(self.seed ^ fnv1a(point) ^ occurrence).is_multiple_of(k.max(1))
            }
        };
        if fires {
            plan.fired.fetch_add(1, Ordering::Relaxed);
            Some(plan.action)
        } else {
            None
        }
    }

    /// Per-point occurrence/firing counters, in point-name order.
    pub fn counts(&self) -> Vec<FaultCount> {
        self.points
            .iter()
            .map(|(point, plan)| FaultCount {
                point: point.clone(),
                occurrences: plan.occurrences.load(Ordering::Relaxed),
                fired: plan.fired.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Total firings across every point.
    pub fn total_fired(&self) -> u64 {
        self.points
            .values()
            .map(|plan| plan.fired.load(Ordering::Relaxed))
            .sum()
    }
}

fn parse_action(s: &str) -> Result<FaultAction, String> {
    match s {
        "fail" => Ok(FaultAction::Fail),
        "panic" => Ok(FaultAction::Panic),
        "short-write" => Ok(FaultAction::ShortWrite),
        _ => match s.strip_prefix("delay:") {
            Some(ms) => ms
                .trim()
                .parse::<u64>()
                .map(FaultAction::DelayMs)
                .map_err(|_| format!("delay milliseconds {ms:?} is not a u64")),
            None => Err(format!(
                "unknown fault action {s:?} (known: fail, panic, delay:MS, short-write)"
            )),
        },
    }
}

fn parse_schedule(s: &str) -> Result<Schedule, String> {
    if s == "always" {
        return Ok(Schedule::Always);
    }
    if let Some(n) = s.strip_prefix("nth:") {
        let n = n
            .trim()
            .parse::<u64>()
            .map_err(|_| format!("nth occurrence {n:?} is not a u64"))?;
        if n == 0 {
            return Err("nth schedule is 1-based; nth:0 never fires".to_string());
        }
        return Ok(Schedule::Nth(n));
    }
    if let Some(k) = s.strip_prefix("1in:") {
        let k = k
            .trim()
            .parse::<u64>()
            .map_err(|_| format!("1-in-K divisor {k:?} is not a u64"))?;
        if k == 0 {
            return Err("1in schedule divisor must be >= 1".to_string());
        }
        return Ok(Schedule::OneIn(k));
    }
    Err(format!("unknown fault schedule {s:?} (known: always, nth:N, 1in:K)"))
}

/// splitmix64 finalizer: a well-mixed pure function of its input, used to
/// turn `(seed, point, occurrence)` into a stable pseudo-random stream
/// without any RNG state.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over the point name, so distinct points draw from decorrelated
/// hash streams under the same seed.
fn fnv1a(s: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in s.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// The hot-swappable handle injection points consult.
///
/// One `Arc<Faults>` is shared by the server, router, registry, and evolve
/// engine; [`Faults::install`] / [`Faults::clear`] swap the active plan
/// atomically. With no plan installed, [`Faults::fire`] is a single
/// relaxed atomic load.
#[derive(Debug)]
pub struct Faults {
    enabled: AtomicBool,
    plan: OrderedMutex<Option<Arc<FaultPlan>>>,
}

impl Default for Faults {
    fn default() -> Self {
        Faults {
            enabled: AtomicBool::new(false),
            plan: OrderedMutex::new(lockorder::EXEC_FAULTS_PLAN, None),
        }
    }
}

impl Faults {
    /// A handle with no plan installed (every `fire` is a no-op).
    pub fn new() -> Faults {
        Faults::default()
    }

    /// Install a plan, replacing any previous one (counters restart).
    pub fn install(&self, plan: FaultPlan) {
        *self.plan.lock() = Some(Arc::new(plan));
        self.enabled.store(true, Ordering::Release);
    }

    /// Remove the active plan; subsequent `fire` calls are no-ops again.
    pub fn clear(&self) {
        self.enabled.store(false, Ordering::Release);
        *self.plan.lock() = None;
    }

    /// The active plan, if any (for `/metrics` and admin reporting).
    pub fn plan(&self) -> Option<Arc<FaultPlan>> {
        if !self.enabled.load(Ordering::Acquire) {
            return None;
        }
        self.plan.lock().clone()
    }

    /// Consult the active plan at an injection point. The no-plan fast
    /// path is one relaxed load.
    pub fn fire(&self, point: &str) -> Option<FaultAction> {
        if !self.enabled.load(Ordering::Relaxed) {
            return None;
        }
        self.plan()?.check(point)
    }
}

/// Render a `catch_unwind` payload as the human-readable panic message
/// (`&str` and `String` payloads; anything else gets a placeholder).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_grammar() {
        let plan = FaultPlan::parse(
            "seed=42; evolve.compute=delay:20@1in:64; registry.build=fail; \
             conn.write=short-write@nth:3; pool.dispatch=panic@always",
        )
        .unwrap();
        assert_eq!(plan.seed(), 42);
        assert_eq!(plan.counts().len(), 4);
        assert_eq!(plan.check("registry.build"), Some(FaultAction::Fail));
        assert_eq!(plan.check("pool.dispatch"), Some(FaultAction::Panic));
        // Unconfigured-but-known point: consulted, never fires.
        assert_eq!(plan.check("conn.read"), None);
    }

    #[test]
    fn rejects_bad_specs() {
        for bad in [
            "",
            "  ;  ",
            "seed=1",
            "bogus.point=fail",
            "evolve.compute=explode",
            "evolve.compute=delay:abc",
            "evolve.compute=fail@sometimes",
            "evolve.compute=fail@nth:0",
            "evolve.compute=fail@1in:0",
            "evolve.compute",
            "seed=notanumber;evolve.compute=fail",
            "evolve.compute=fail;evolve.compute=panic",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "spec {bad:?} should be rejected");
        }
    }

    #[test]
    fn nth_fires_exactly_once() {
        let plan = FaultPlan::parse("conn.write=short-write@nth:3").unwrap();
        let fired: Vec<bool> = (0..6).map(|_| plan.check("conn.write").is_some()).collect();
        assert_eq!(fired, vec![false, false, true, false, false, false]);
        let counts = plan.counts();
        assert_eq!(counts[0].occurrences, 6);
        assert_eq!(counts[0].fired, 1);
    }

    #[test]
    fn one_in_k_is_seed_deterministic() {
        let run = |seed: u64| {
            let plan = FaultPlan::parse(&format!("seed={seed};evolve.compute=fail@1in:4")).unwrap();
            (0..256).map(|_| plan.check("evolve.compute").is_some()).collect::<Vec<bool>>()
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed must fire identically");
        let fired = a.iter().filter(|f| **f).count();
        // ~64 expected out of 256; accept a wide deterministic band.
        assert!((16..=112).contains(&fired), "1in:4 fired {fired}/256");
        let c = run(8);
        assert_ne!(a, c, "different seeds should differ somewhere in 256 draws");
    }

    #[test]
    fn handle_is_noop_until_installed_and_after_clear() {
        let faults = Faults::new();
        assert_eq!(faults.fire("evolve.compute"), None);
        assert!(faults.plan().is_none());
        faults.install(FaultPlan::parse("evolve.compute=delay:5").unwrap());
        assert_eq!(faults.fire("evolve.compute"), Some(FaultAction::DelayMs(5)));
        assert_eq!(faults.plan().map(|p| p.total_fired()), Some(1));
        faults.clear();
        assert_eq!(faults.fire("evolve.compute"), None);
        assert!(faults.plan().is_none());
    }

    #[test]
    fn install_replaces_plan_and_counters() {
        let faults = Faults::new();
        faults.install(FaultPlan::parse("conn.read=fail").unwrap());
        assert!(faults.fire("conn.read").is_some());
        faults.install(FaultPlan::parse("conn.read=fail@nth:2").unwrap());
        assert_eq!(faults.fire("conn.read"), None, "fresh plan restarts occurrence counting");
        assert_eq!(faults.fire("conn.read"), Some(FaultAction::Fail));
    }

    #[test]
    fn panic_message_extracts_payloads() {
        let caught = std::panic::catch_unwind(|| panic!("boom {}", 1)).unwrap_err();
        assert_eq!(panic_message(caught.as_ref()), "boom 1");
        let caught = std::panic::catch_unwind(|| panic!("static boom")).unwrap_err();
        assert_eq!(panic_message(caught.as_ref()), "static boom");
    }
}
