//! A persistent bounded worker pool.
//!
//! [`par_map_range`](crate::par_map_range) covers the batch side of the
//! workspace: fixed-size fan-outs that live for one pipeline stage. A
//! *server* workload is different — jobs arrive continuously, spawning a
//! thread per request would be unbounded, and shutdown must drain what was
//! already accepted. [`WorkerPool`] fills that gap:
//!
//! * **Persistent workers.** `threads` is resolved once through the same
//!   [`resolve_threads`](crate::resolve_threads) convention as every other
//!   knob in the workspace (`None` = available parallelism, `Some(0)` /
//!   `Some(1)` = one worker) and the workers live until shutdown.
//! * **Typed jobs, one handler.** The pool is generic over the job value
//!   (`TcpStream`, a request struct, …) and runs one shared handler on
//!   every job. This keeps the rejection path type-safe: when the queue is
//!   full, [`WorkerPool::try_execute`] hands the job value back so the
//!   caller can shed load explicitly (e.g. answer HTTP 503 on the
//!   returned connection) instead of buffering without bound.
//! * **Bounded queue.** Submission goes through a
//!   [`std::sync::mpsc::sync_channel`] of fixed capacity.
//! * **Graceful drain.** [`WorkerPool::shutdown`] closes the submission
//!   side, lets the workers finish every job already queued, and joins
//!   them. Dropping the pool does the same.
//!
//! Like the rest of the crate this is plain `std`: no work stealing, no
//! `unsafe`, FIFO dispatch to whichever worker is free. A panicking job is
//! caught so it cannot silently remove a worker from the pool.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::faults::{panic_message, FaultAction, Faults};
use crate::lockorder::{self, OrderedMutex};
use crate::resolve_threads;

/// Error returned by [`WorkerPool::try_execute`] when the submission queue
/// is at capacity. The rejected job is handed back untouched so the caller
/// can shed it explicitly.
pub struct PoolFull<T>(pub T);

impl<T> std::fmt::Debug for PoolFull<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("PoolFull(..)")
    }
}

impl<T> std::fmt::Display for PoolFull<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("worker pool queue is full")
    }
}

/// A fixed-size thread pool running one handler over a bounded FIFO queue
/// of typed jobs.
///
/// See the [module docs](self) for the design. The pool tracks its *depth*
/// — jobs submitted but not yet finished (queued + running) — so callers
/// can export it as a load metric.
pub struct WorkerPool<T: Send + 'static> {
    tx: Option<SyncSender<T>>,
    workers: Vec<JoinHandle<()>>,
    depth: Arc<AtomicUsize>,
    panics: Arc<PanicLog>,
}

/// Panic bookkeeping shared by a pool's workers: a containment count plus
/// the most recent payload message, so operators see *why* jobs died
/// instead of a silently shrinking throughput.
#[derive(Debug)]
struct PanicLog {
    count: AtomicU64,
    last: OrderedMutex<Option<String>>,
}

impl Default for PanicLog {
    fn default() -> Self {
        PanicLog {
            count: AtomicU64::new(0),
            last: OrderedMutex::new(lockorder::EXEC_POOL_PANIC_LOG, None),
        }
    }
}

impl<T: Send + 'static> WorkerPool<T> {
    /// Spawn a pool whose workers run `handler` on every submitted job.
    ///
    /// `threads` follows the workspace convention ([`resolve_threads`]):
    /// `None` = available parallelism, `Some(0)`/`Some(1)` = a single
    /// worker. `queue_capacity` bounds the number of *waiting* jobs
    /// (running jobs are not counted against it); it is clamped to at
    /// least 1.
    pub fn new<H>(threads: Option<usize>, queue_capacity: usize, handler: H) -> Self
    where
        H: Fn(T) + Send + Sync + 'static,
    {
        Self::with_faults(threads, queue_capacity, None, handler)
    }

    /// [`WorkerPool::new`] with a fault-injection hook: before each job,
    /// the worker consults `faults` at the `pool.dispatch` point. A delay
    /// action sleeps; fail/panic/short-write actions panic *inside* the
    /// per-job `catch_unwind`, which models a lost dispatch — the job is
    /// dropped (whatever completion it owed never happens), the worker
    /// survives, and the panic is recorded like any handler panic. Callers
    /// that coalesce on a [`Flight`](crate::Flight) must therefore bound
    /// their waits (the serve layer's request deadlines do exactly this).
    pub fn with_faults<H>(
        threads: Option<usize>,
        queue_capacity: usize,
        faults: Option<Arc<Faults>>,
        handler: H,
    ) -> Self
    where
        H: Fn(T) + Send + Sync + 'static,
    {
        let workers = resolve_threads(threads, usize::MAX);
        let (tx, rx) = sync_channel::<T>(queue_capacity.max(1));
        let rx = Arc::new(OrderedMutex::new(lockorder::EXEC_POOL_RX, rx));
        let handler = Arc::new(handler);
        let depth = Arc::new(AtomicUsize::new(0));
        let panics = Arc::new(PanicLog::default());
        let handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let handler = Arc::clone(&handler);
                let depth = Arc::clone(&depth);
                let panics = Arc::clone(&panics);
                let faults = faults.clone();
                std::thread::Builder::new()
                    .name(format!("pool-worker-{i}"))
                    .spawn(move || {
                        worker_loop(&rx, handler.as_ref(), &depth, &panics, faults.as_deref())
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { tx: Some(tx), workers: handles, depth, panics }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Handler panics contained by the per-job `catch_unwind` (including
    /// injected `pool.dispatch` faults).
    pub fn worker_panics(&self) -> u64 {
        self.panics.count.load(Ordering::Relaxed)
    }

    /// The most recent contained panic's payload message, if any.
    pub fn last_panic(&self) -> Option<String> {
        self.panics.last.lock().clone()
    }

    /// Jobs submitted but not yet finished (queued + running).
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Acquire)
    }

    /// Submit a job, failing fast when the queue is full (or the pool is
    /// shutting down). The rejected job is returned untouched.
    pub fn try_execute(&self, job: T) -> Result<(), PoolFull<T>> {
        let Some(tx) = self.tx.as_ref() else {
            return Err(PoolFull(job));
        };
        self.depth.fetch_add(1, Ordering::AcqRel);
        match tx.try_send(job) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(job)) | Err(TrySendError::Disconnected(job)) => {
                self.depth.fetch_sub(1, Ordering::AcqRel);
                Err(PoolFull(job))
            }
        }
    }

    /// Submit a job, blocking while the queue is full. Returns the job if
    /// the pool has shut down.
    pub fn execute(&self, job: T) -> Result<(), PoolFull<T>> {
        let Some(tx) = self.tx.as_ref() else {
            return Err(PoolFull(job));
        };
        self.depth.fetch_add(1, Ordering::AcqRel);
        match tx.send(job) {
            Ok(()) => Ok(()),
            Err(err) => {
                self.depth.fetch_sub(1, Ordering::AcqRel);
                Err(PoolFull(err.0))
            }
        }
    }

    /// Stop accepting new jobs, finish every job already queued, and join
    /// the workers. Dropping the pool performs the same drain.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        drop(self.tx.take()); // closes the channel: workers drain then exit
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<T: Send + 'static> Drop for WorkerPool<T> {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn worker_loop<T, H: Fn(T)>(
    rx: &OrderedMutex<Receiver<T>>,
    handler: &H,
    depth: &AtomicUsize,
    panics: &PanicLog,
    faults: Option<&Faults>,
) {
    loop {
        // Hold the lock only while receiving, never while running the job.
        let job = rx.lock().recv();
        match job {
            Ok(job) => {
                let fault = faults.and_then(|f| f.fire("pool.dispatch"));
                // A panicking handler must not take the worker down with
                // it — the pool would silently lose capacity. The payload
                // is captured so the loss is observable, not silent.
                let result = catch_unwind(AssertUnwindSafe(|| {
                    match fault {
                        Some(FaultAction::DelayMs(ms)) => {
                            std::thread::sleep(std::time::Duration::from_millis(ms));
                        }
                        Some(_) => panic!("injected fault: pool.dispatch"),
                        None => {}
                    }
                    handler(job)
                }));
                if let Err(payload) = result {
                    panics.count.fetch_add(1, Ordering::Relaxed);
                    let message = panic_message(payload.as_ref());
                    *panics.last.lock() = Some(message);
                }
                depth.fetch_sub(1, Ordering::AcqRel);
            }
            Err(_) => return, // channel closed and drained: shutdown
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::{mpsc, Mutex};
    use std::time::Duration;

    #[test]
    fn runs_every_job_and_drains_on_shutdown() {
        let done = Arc::new(AtomicUsize::new(0));
        let pool = {
            let done = Arc::clone(&done);
            WorkerPool::new(Some(3), 64, move |n: usize| {
                done.fetch_add(n, Ordering::SeqCst);
            })
        };
        assert_eq!(pool.workers(), 3);
        for n in 0..32 {
            pool.execute(n).unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), (0..32).sum::<usize>());
    }

    #[test]
    fn try_execute_rejects_when_saturated_and_returns_the_job() {
        // One worker blocked on a gate + capacity-1 queue: the third
        // submission must be rejected and hand the job value back.
        let (entered_tx, entered_rx) = mpsc::channel::<()>();
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let gate_rx = Mutex::new(gate_rx);
        let pool = WorkerPool::new(Some(1), 1, move |_: u32| {
            entered_tx.send(()).expect("test alive");
            // Bounded wait: even if the test panics first and never opens
            // the gate, the worker must not block the pool drain forever.
            let _ = gate_rx.lock().unwrap().recv_timeout(Duration::from_secs(10));
        });
        pool.try_execute(1).unwrap();
        // `depth()` counts queued *and* running jobs, so it cannot tell us
        // when the worker has dequeued job 1 — wait for its entry signal.
        entered_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("worker should pick up job 1");
        pool.try_execute(2).unwrap(); // sits in the queue
        let rejected = pool.try_execute(3);
        match rejected {
            Err(PoolFull(job)) => assert_eq!(job, 3),
            Ok(()) => panic!("third job should have been rejected"),
        }
        assert_eq!(pool.depth(), 2);
        gate_tx.send(()).unwrap();
        let _ = gate_tx.send(()); // job 2 may still be queued or already gated
        pool.shutdown();
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let done = Arc::new(AtomicUsize::new(0));
        let pool = {
            let done = Arc::clone(&done);
            WorkerPool::new(Some(1), 16, move |n: usize| {
                if n == 0 {
                    panic!("boom");
                }
                done.fetch_add(1, Ordering::SeqCst);
            })
        };
        pool.execute(0).unwrap();
        for _ in 0..5 {
            pool.execute(1).unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn panic_payloads_are_captured_not_discarded() {
        let pool = WorkerPool::new(Some(1), 16, move |n: usize| {
            if n == 0 {
                panic!("boom on job {n}");
            }
        });
        pool.execute(0).unwrap();
        pool.execute(1).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.depth() != 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(pool.worker_panics(), 1);
        assert_eq!(pool.last_panic().as_deref(), Some("boom on job 0"));
        pool.shutdown();
    }

    #[test]
    fn dispatch_fault_drops_job_but_not_worker() {
        use crate::faults::{FaultPlan, Faults};
        let faults = Arc::new(Faults::new());
        faults.install(FaultPlan::parse("pool.dispatch=fail@nth:1").unwrap());
        let done = Arc::new(AtomicUsize::new(0));
        let pool = {
            let done = Arc::clone(&done);
            WorkerPool::with_faults(Some(1), 16, Some(Arc::clone(&faults)), move |_: usize| {
                done.fetch_add(1, Ordering::SeqCst);
            })
        };
        for n in 0..4 {
            pool.execute(n).unwrap();
        }
        pool.shutdown();
        // Job 0 was dropped by the injected dispatch fault; 1..3 ran.
        assert_eq!(done.load(Ordering::SeqCst), 3);
        let plan = faults.plan().expect("plan installed");
        assert_eq!(plan.total_fired(), 1);
    }

    #[test]
    fn thread_knob_follows_workspace_convention() {
        let mk = |t| WorkerPool::new(t, 4, |_: ()| {});
        assert_eq!(mk(Some(0)).workers(), 1);
        assert_eq!(mk(Some(1)).workers(), 1);
        assert_eq!(mk(Some(5)).workers(), 5);
        assert!(mk(None).workers() >= 1);
    }

    #[test]
    fn depth_returns_to_zero() {
        let pool = WorkerPool::new(Some(2), 8, |_: ()| {});
        for _ in 0..8 {
            pool.execute(()).unwrap();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.depth() != 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(pool.depth(), 0);
        pool.shutdown();
    }
}
